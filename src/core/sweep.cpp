#include "bsr/sweep.hpp"

#include <chrono>
#include <cstdio>
#include <exception>
#include <stdexcept>
#include <utility>

#include "bsr/registry.hpp"
#include "common/metrics.hpp"
#include "common/thread_pool.hpp"
#include "core/decomposer.hpp"

namespace bsr {

// ---- axis builders ----------------------------------------------------------

namespace {

std::string fmt_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

}  // namespace

Axis strategy_axis(const std::vector<std::string>& keys) {
  Axis axis{"strategy", {}};
  for (const auto& key : keys) {
    axis.points.push_back({key, [key](RunConfig& c) { c.strategy = key; }});
  }
  return axis;
}

Axis strategy_axis_labeled(
    const std::vector<std::pair<std::string, std::string>>& key_labels) {
  Axis axis{"strategy", {}};
  for (const auto& [key, label] : key_labels) {
    axis.points.push_back({label, [key = key](RunConfig& c) { c.strategy = key; }});
  }
  return axis;
}

Axis factorization_axis(const std::vector<Factorization>& facts) {
  Axis axis{"factorization", {}};
  for (const Factorization f : facts) {
    axis.points.push_back(
        {predict::to_string(f), [f](RunConfig& c) { c.factorization = f; }});
  }
  return axis;
}

Axis size_axis(const std::vector<std::int64_t>& ns, bool retune_block) {
  Axis axis{"n", {}};
  for (const std::int64_t n : ns) {
    axis.points.push_back({std::to_string(n), [n, retune_block](RunConfig& c) {
                             c.n = n;
                             if (retune_block) c.b = 0;
                           }});
  }
  return axis;
}

Axis ratio_axis(const std::vector<double>& rs) {
  Axis axis{"r", {}};
  for (const double r : rs) {
    axis.points.push_back(
        {fmt_double(r), [r](RunConfig& c) { c.reclamation_ratio = r; }});
  }
  return axis;
}

Axis abft_axis(const std::vector<std::string>& policies) {
  Axis axis{"abft", {}};
  for (const auto& p : policies) {
    axis.points.push_back({p, [p](RunConfig& c) { c.abft_policy = p; }});
  }
  return axis;
}

Axis precision_axis(const std::vector<int>& elem_bytes) {
  Axis axis{"precision", {}};
  for (const int bytes : elem_bytes) {
    axis.points.push_back({bytes == 8 ? "double" : "single",
                           [bytes](RunConfig& c) { c.elem_bytes = bytes; }});
  }
  return axis;
}

Axis trial_axis(int trials, std::uint64_t root_seed) {
  Axis axis{"trial", {}};
  for (int t = 0; t < trials; ++t) {
    axis.points.push_back(
        {std::to_string(t), [t, root_seed](RunConfig& c) {
           c.seed = derive_cell_seed(root_seed, static_cast<std::uint64_t>(t));
         }});
  }
  return axis;
}

// ---- SweepRow / SweepResult -------------------------------------------------

double SweepRow::energy_saving() const {
  return baseline ? report->energy_saving_vs(*baseline) : 0.0;
}

double SweepRow::ed2p_reduction() const {
  return baseline ? report->ed2p_reduction_vs(*baseline) : 0.0;
}

double SweepRow::speedup() const {
  return baseline ? report->speedup_vs(*baseline) : 1.0;
}

const SweepRow& SweepResult::at(
    const std::vector<std::pair<std::string, std::string>>& coords) const {
  const SweepRow* found = nullptr;
  for (const SweepRow& row : rows) {
    bool match = true;
    for (const auto& [axis, label] : coords) {
      const auto it = row.coords.find(axis);
      if (it == row.coords.end() || it->second != label) {
        match = false;
        break;
      }
    }
    if (!match) continue;
    if (found != nullptr) {
      throw std::out_of_range("SweepResult::at: coordinates match several rows");
    }
    found = &row;
  }
  if (found == nullptr) {
    std::string what = "SweepResult::at: no row matches";
    for (const auto& [axis, label] : coords) {
      what += ' ' + axis + "=" + label;
    }
    throw std::out_of_range(what);
  }
  return *found;
}

std::vector<const SweepRow*> SweepResult::where(const std::string& axis,
                                                const std::string& label) const {
  std::vector<const SweepRow*> out;
  for (const SweepRow& row : rows) {
    const auto it = row.coords.find(axis);
    if (it != row.coords.end() && it->second == label) out.push_back(&row);
  }
  return out;
}

// ---- Sweep ------------------------------------------------------------------

Sweep::Sweep(RunConfig base) : base_(std::move(base)) {}

Sweep& Sweep::over(Axis axis) {
  axes_.push_back(std::move(axis));
  return *this;
}

Sweep& Sweep::baseline(std::string strategy_key) {
  baseline_strategy_ = std::move(strategy_key);
  return *this;
}

Sweep& Sweep::threads(int n) {
  if (n < 0) {
    throw std::invalid_argument("Sweep::threads: need n >= 0 (got " +
                                std::to_string(n) + ")");
  }
  threads_ = n;
  return *this;
}

Sweep& Sweep::store(std::shared_ptr<ResultStore> store) {
  store_ = std::move(store);
  return *this;
}

Sweep& Sweep::clear_cache() {
  cache_.clear();
  return *this;
}

namespace {

/// The baseline for a cell: same configuration, baseline strategy substituted
/// (canonicalized, so "BSR"/"org" spellings behave like "bsr"/"original").
/// For the built-in non-BSR baselines — which provably ignore the BSR-only
/// knobs — those knobs reset to defaults so e.g. all nine r-values of a
/// Pareto scan share one cached Original run. BSR itself and
/// runtime-registered strategies keep the cell's knobs: their factories
/// receive the whole config and may read any field (mirrors the same
/// distinction in RunConfig::fingerprint()).
RunConfig baseline_config(RunConfig cfg, const std::string& strategy_key_raw) {
  const std::string strategy_key = strategies().canonical(strategy_key_raw);
  cfg.strategy = strategy_key;
  if (strategy_key == "original" || strategy_key == "r2h" ||
      strategy_key == "sr") {
    const RunConfig defaults;
    cfg.reclamation_ratio = defaults.reclamation_ratio;
    // fc_desired stays on cluster runs: per-device ABFT-OC consults it under
    // every strategy there (mirrors RunConfig::fingerprint()).
    if (cfg.devices < 1) cfg.fc_desired = defaults.fc_desired;
    cfg.bsr_use_optimized_guardband = defaults.bsr_use_optimized_guardband;
    cfg.bsr_allow_overclocking = defaults.bsr_allow_overclocking;
    cfg.bsr_use_enhanced_predictor = defaults.bsr_use_enhanced_predictor;
  }
  return cfg;
}

}  // namespace

SweepResult Sweep::run() {
  const auto t0 = std::chrono::steady_clock::now();

  // 1. Expand the cartesian product, first axis outermost.
  SweepResult result;
  for (const Axis& axis : axes_) result.axis_names.push_back(axis.name);
  std::size_t cells = 1;
  for (std::size_t a = 0; a < axes_.size(); ++a) {
    const Axis& axis = axes_[a];
    if (axis.points.empty()) {
      throw std::invalid_argument("Sweep: axis \"" + axis.name +
                                  "\" has no points");
    }
    for (std::size_t b = 0; b < a; ++b) {
      if (axes_[b].name == axis.name) {
        throw std::invalid_argument("Sweep: duplicate axis name \"" +
                                    axis.name + "\"");
      }
    }
    cells *= axis.points.size();
  }
  result.rows.reserve(cells);
  for (std::size_t index = 0; index < cells; ++index) {
    SweepRow row;
    row.index = index;
    row.config = base_;
    std::size_t stride = cells;
    for (const Axis& axis : axes_) {
      stride /= axis.points.size();
      const AxisPoint& point = axis.points[(index / stride) % axis.points.size()];
      row.coords.emplace(axis.name, point.label);
      point.apply(row.config);
    }
    row.config.validate();
    result.rows.push_back(std::move(row));
  }

  // 2. Collect the unique configurations to execute: every cell plus (when
  // requested) every cell's baseline, deduplicated by fingerprint against
  // both this grid and the persistent cache.
  struct Job {
    RunConfig config;
    std::shared_ptr<const RunReport> report;
    std::exception_ptr error;
  };
  std::vector<Job> jobs;
  jobs.reserve(result.rows.size() + (baseline_strategy_ ? result.rows.size() : 0));
  std::map<std::string, std::size_t> job_index;  // fingerprint -> jobs slot
  const auto request = [&](const RunConfig& cfg) -> std::string {
    ++result.requested_runs;
    ++counters_.requested;
    std::string fp = cfg.fingerprint();
    if (cache_.count(fp) != 0) {
      ++counters_.memory_hits;
      return fp;
    }
    if (job_index.count(fp) != 0) {
      ++counters_.coalesced;
      return fp;
    }
    // Memory miss: consult the durable tier before scheduling an execution.
    // A store hit is promoted into the memory cache so repeats stay cheap.
    if (store_ != nullptr) {
      if (std::shared_ptr<const RunReport> stored = store_->load(fp)) {
        cache_.emplace(fp, std::move(stored));
        ++counters_.store_hits;
        ++result.store_hits;
        return fp;
      }
    }
    job_index.emplace(fp, jobs.size());
    jobs.push_back(Job{cfg, nullptr, nullptr});
    return fp;
  };
  std::vector<std::string> cell_fp;
  std::vector<std::string> baseline_fp;
  cell_fp.reserve(result.rows.size());
  if (baseline_strategy_) baseline_fp.reserve(result.rows.size());
  for (const SweepRow& row : result.rows) {
    cell_fp.push_back(request(row.config));
    if (baseline_strategy_) {
      baseline_fp.push_back(
          request(baseline_config(row.config, *baseline_strategy_)));
    }
  }

  // 3. Resolve each distinct platform once; the Decomposer is shared by all
  // jobs on that platform (Decomposer::run is const and stateless).
  std::map<std::string, core::Decomposer> decomposers;
  for (const Job& job : jobs) {
    if (decomposers.count(job.config.platform) == 0) {
      decomposers.emplace(job.config.platform,
                          core::Decomposer(make_platform(job.config.platform)));
    }
  }

  // 4. Execute. Job order, and therefore every result, is independent of the
  // worker that picks a job up; exceptions are captured per job and the first
  // (by job order) rethrown after the pool drains.
  const auto execute = [&](std::size_t i) {
    Job& job = jobs[i];
    try {
      job.report = std::make_shared<const RunReport>(
          decomposers.at(job.config.platform).run(job.config));
    } catch (...) {
      job.error = std::current_exception();
    }
  };
  const bool shared_pool_useless =
      threads_ == 0 && ThreadPool::shared().size() <= 1;
  if (threads_ == 1 || jobs.size() <= 1 || shared_pool_useless) {
    for (std::size_t i = 0; i < jobs.size(); ++i) execute(i);
  } else if (threads_ == 0) {
    ThreadPool::shared().parallel_for(jobs.size(), execute);
  } else {
    ThreadPool pool(static_cast<std::size_t>(threads_));
    pool.parallel_for(jobs.size(), execute);
  }
  for (const Job& job : jobs) {
    if (job.error) std::rethrow_exception(job.error);
  }

  // 5. Publish to the persistent cache (and through the durable tier, when
  // mounted) and assemble rows in expansion order.
  result.unique_runs = jobs.size();
  result.cache_hits = result.requested_runs - result.unique_runs;
  counters_.executed += jobs.size();
  {
    // Mirror the grid's cache accounting into the process-wide metrics
    // registry (bsr/observability.hpp) so long-lived hosts (the serve
    // daemon, campaign drivers) expose cumulative sweep efficiency.
    auto& reg = common::MetricsRegistry::global();
    static common::Counter& requested = reg.counter(
        "bsr_sweep_requested_runs_total", "cells requested across all sweeps");
    static common::Counter& unique = reg.counter(
        "bsr_sweep_unique_runs_total", "simulator executions across all sweeps");
    static common::Counter& hits = reg.counter(
        "bsr_sweep_cache_hits_total",
        "cells served from the sweep result cache");
    requested.inc(result.requested_runs);
    unique.inc(result.unique_runs);
    hits.inc(result.cache_hits);
  }
  for (auto& [fp, slot] : job_index) {
    if (store_ != nullptr) store_->save(fp, *jobs[slot].report);
    cache_.emplace(fp, std::move(jobs[slot].report));
  }
  for (std::size_t i = 0; i < result.rows.size(); ++i) {
    result.rows[i].report = cache_.at(cell_fp[i]);
    if (baseline_strategy_) {
      result.rows[i].baseline = cache_.at(baseline_fp[i]);
    }
  }

  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return result;
}

// ---- emit -------------------------------------------------------------------

std::vector<MetricColumn> standard_columns(const SweepResult& result) {
  std::vector<MetricColumn> cols;
  for (const std::string& axis : result.axis_names) {
    cols.push_back({axis, [axis](const SweepRow& row) {
                      return row.coords.at(axis);
                    }});
  }
  const auto num = [](double v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return std::string(buf);
  };
  cols.push_back({"time_s", [num](const SweepRow& r) {
                    return num(r.report->seconds());
                  }});
  cols.push_back({"gflops", [num](const SweepRow& r) {
                    return num(r.report->gflops());
                  }});
  cols.push_back({"energy_j", [num](const SweepRow& r) {
                    return num(r.report->total_energy_j());
                  }});
  cols.push_back({"ed2p", [num](const SweepRow& r) {
                    return num(r.report->ed2p());
                  }});
  const bool with_baseline =
      !result.rows.empty() && result.rows.front().baseline != nullptr;
  if (with_baseline) {
    cols.push_back({"saving", [num](const SweepRow& r) {
                      return num(r.energy_saving());
                    }});
    cols.push_back({"ed2p_cut", [num](const SweepRow& r) {
                      return num(r.ed2p_reduction());
                    }});
    cols.push_back({"speedup", [num](const SweepRow& r) {
                      return num(r.speedup());
                    }});
  }
  return cols;
}

void emit(const SweepResult& result, const std::vector<MetricColumn>& columns,
          ResultSink& sink) {
  std::vector<std::string> names;
  names.reserve(columns.size());
  for (const MetricColumn& c : columns) names.push_back(c.name);
  sink.begin(names);
  for (const SweepRow& row : result.rows) {
    std::vector<std::string> values;
    values.reserve(columns.size());
    for (const MetricColumn& c : columns) values.push_back(c.value(row));
    sink.add_row(values);
  }
  sink.end();
}

void emit(const SweepResult& result, ResultSink& sink) {
  emit(result, standard_columns(result), sink);
}

}  // namespace bsr
