// Public facade: run {Cholesky, LU, QR} under an energy-saving strategy on the
// simulated CPU-GPU platform, optionally executing the real numerics with real
// ABFT protection and fault injection.
//
// Quickstart:
//   bsr::core::Decomposer dec;                       // paper-default platform
//   bsr::core::RunOptions opt;
//   opt.factorization = bsr::predict::Factorization::LU;
//   opt.strategy = bsr::core::StrategyKind::BSR;
//   opt.reclamation_ratio = 0.0;                     // max energy saving
//   auto report = dec.run(opt);
//   std::cout << report.total_energy_j() << " J\n";
#pragma once

#include <memory>

#include "core/report.hpp"
#include "energy/strategy.hpp"
#include "hw/platform.hpp"

namespace bsr::core {

/// How the ABFT protection level is chosen each iteration. Adaptive is the
/// paper's Algorithm 1; the Force* policies reproduce the always-on baselines
/// of Fig. 9.
enum class AbftPolicy {
  Adaptive,     ///< Algorithm 1: cheapest scheme meeting fc_desired per iter.
  ForceNone,    ///< No protection (fastest; SDCs propagate undetected).
  ForceSingle,  ///< Single-side checksums every iteration.
  ForceFull,    ///< Full checksums every iteration (strongest, costliest).
};

const char* to_string(AbftPolicy p);

/// Knobs beyond RunOptions that benches use to isolate single ingredients;
/// the defaults are the paper's full BSR configuration.
struct ExtendedOptions {
  AbftPolicy abft_policy = AbftPolicy::Adaptive;

  // BSR ablation switches (bench_ablation; all on = the paper's BSR).
  bool bsr_use_optimized_guardband = true;
  bool bsr_allow_overclocking = true;
  bool bsr_use_enhanced_predictor = true;
};

class Decomposer {
 public:
  explicit Decomposer(
      hw::PlatformProfile platform = hw::PlatformProfile::paper_default());

  [[nodiscard]] const hw::PlatformProfile& platform() const { return platform_; }

  /// Runs one factorization under the options; see RunReport for outputs.
  [[nodiscard]] RunReport run(const RunOptions& opts) const {
    return run(opts, ExtendedOptions{});
  }
  [[nodiscard]] RunReport run(const RunOptions& opts,
                              const ExtendedOptions& ext) const;

  /// Builds the strategy object for a kind (exposed for tests and benches).
  static std::unique_ptr<energy::Strategy> make_strategy(
      StrategyKind kind, const predict::WorkloadModel& wl,
      const RunOptions& opts, const ExtendedOptions& ext = ExtendedOptions{});

 private:
  hw::PlatformProfile platform_;
};

std::string summarize(const RunReport& r);

}  // namespace bsr::core
