// Public facade: run {Cholesky, LU, QR} under an energy-saving strategy on the
// simulated CPU-GPU platform, optionally executing the real numerics with real
// ABFT protection and fault injection.
//
// Quickstart (new API — see include/bsr/bsr.hpp and docs/API_MIGRATION.md):
//   bsr::RunConfig cfg;                              // paper defaults
//   cfg.factorization = bsr::Factorization::LU;
//   cfg.strategy = "bsr";                            // registry key
//   cfg.reclamation_ratio = 0.0;                     // max energy saving
//   auto report = bsr::run(cfg);
//   std::cout << report.total_energy_j() << " J\n";
#pragma once

#include <memory>

#include "bsr/run_config.hpp"
#include "core/report.hpp"
#include "energy/strategy.hpp"
#include "hw/platform.hpp"

namespace bsr::core {

class Decomposer {
 public:
  explicit Decomposer(
      hw::PlatformProfile platform = hw::PlatformProfile::paper_default());

  [[nodiscard]] const hw::PlatformProfile& platform() const { return platform_; }

  /// Runs one factorization under a validated RunConfig; the strategy and
  /// ABFT policy are resolved through the bsr:: registries, so registry-only
  /// strategies work here. The config's `platform` key is ignored — this
  /// Decomposer's platform is used (bsr::run(cfg) resolves the key).
  [[nodiscard]] RunReport run(const RunConfig& cfg) const;

  /// DEPRECATED shims for the legacy RunOptions/ExtendedOptions pair; new
  /// code should pass a RunConfig. Kept for one release.
  [[nodiscard]] RunReport run(const RunOptions& opts) const {
    return run(opts, ExtendedOptions{});
  }
  [[nodiscard]] RunReport run(const RunOptions& opts,
                              const ExtendedOptions& ext) const;

  /// Builds the strategy object for a kind (exposed for tests and benches).
  /// Thin wrapper over the bsr::strategies() registry.
  static std::unique_ptr<energy::Strategy> make_strategy(
      StrategyKind kind, const predict::WorkloadModel& wl,
      const RunOptions& opts, const ExtendedOptions& ext = ExtendedOptions{});

 private:
  RunReport run_with(const RunOptions& opts, const ExtendedOptions& ext,
                     energy::Strategy& strategy) const;

  hw::PlatformProfile platform_;
};

std::string summarize(const RunReport& r);

}  // namespace bsr::core
