#include "core/trace_io.hpp"

#include <fstream>
#include <ostream>
#include <stdexcept>

namespace bsr::core {

std::string write_trace_csv(const RunReport& report, std::ostream& os) {
  const std::string header =
      "iter,cpu_mhz,gpu_mhz,abft_mode,pd_ms,transfer_ms,pu_tmu_ms,abft_ms,"
      "dvfs_ms,cpu_lane_ms,gpu_lane_ms,span_ms,slack_ms,cpu_energy_j,"
      "gpu_energy_j";
  os << header << '\n';
  for (const auto& it : report.trace.iterations) {
    os << it.k << ',' << it.cpu_freq << ',' << it.gpu_freq << ','
       << abft::to_string(it.abft_mode) << ',' << it.pd.millis() << ','
       << it.transfer.millis() << ',' << it.pu_tmu.millis() << ','
       << it.abft_time.millis() << ',' << (it.cpu_dvfs + it.gpu_dvfs).millis()
       << ',' << it.cpu_lane.millis() << ',' << it.gpu_lane.millis() << ','
       << it.span.millis() << ',' << it.slack.millis() << ','
       << it.cpu_energy_j << ',' << it.gpu_energy_j << '\n';
  }
  return header;
}

void write_trace_csv(const RunReport& report, const std::string& path) {
  std::ofstream os(path);
  if (!os) {
    throw std::runtime_error("write_trace_csv: cannot open " + path);
  }
  write_trace_csv(report, os);
}

}  // namespace bsr::core
