// Run report: everything a caller (or bench) wants to know about one run.
#pragma once

#include <vector>

#include "abft/verify.hpp"
#include "cluster/report.hpp"
#include "core/options.hpp"
#include "sched/timeline.hpp"

namespace bsr::core {

struct RunReport {
  RunOptions options;
  /// The strategy's registry key ("bsr", "original", or a runtime-registered
  /// name). Authoritative where `options.strategy` is not: registry-only
  /// strategies have no StrategyKind, so the enum field holds a BSR
  /// placeholder for them.
  std::string strategy_name;
  sched::RunTrace trace;
  abft::AbftStats abft;

  bool numeric_executed = false;
  double residual = 0.0;         ///< relative factorization residual (numeric)
  bool numeric_correct = true;   ///< residual below threshold

  /// Cost of redoing trailing updates after uncorrectable detections
  /// (RunOptions::recover_uncorrectable); included in seconds()/energy.
  SimTime recovery_time;
  double recovery_energy_j = 0.0;

  /// Per-device breakdown when the run executed on the cluster engine
  /// (RunConfig::devices >= 1): element 0 is the host, then one entry per
  /// accelerator. Empty for classic single-node runs. Totals above already
  /// aggregate these (cpu_energy = host, gpu_energy = all accelerators).
  std::vector<cluster::DeviceUsage> device_usage;

  [[nodiscard]] double seconds() const {
    return (trace.total_time + recovery_time).seconds();
  }
  [[nodiscard]] double total_energy_j() const {
    return trace.total_energy_j() + recovery_energy_j;
  }
  [[nodiscard]] double cpu_energy_j() const { return trace.cpu_energy_j; }
  [[nodiscard]] double gpu_energy_j() const {
    return trace.gpu_energy_j + recovery_energy_j;
  }
  [[nodiscard]] double ed2p() const {
    return total_energy_j() * seconds() * seconds();
  }
  [[nodiscard]] double gflops() const {
    const double t = seconds();
    return t <= 0.0 ? 0.0 : options.workload().total_flops() / t / 1e9;
  }

  /// Fraction of energy saved relative to a baseline run (positive = better).
  [[nodiscard]] double energy_saving_vs(const RunReport& baseline) const {
    return 1.0 - total_energy_j() / baseline.total_energy_j();
  }
  [[nodiscard]] double ed2p_reduction_vs(const RunReport& baseline) const {
    return 1.0 - ed2p() / baseline.ed2p();
  }
  [[nodiscard]] double speedup_vs(const RunReport& baseline) const {
    return baseline.seconds() / seconds();
  }
};

}  // namespace bsr::core
