// Run report: everything a caller (or bench) wants to know about one run.
#pragma once

#include <vector>

#include "abft/verify.hpp"
#include "cluster/report.hpp"
#include "core/options.hpp"
#include "sched/timeline.hpp"

namespace bsr::core {

/// One lane's fault-campaign outcome over a whole run (see bsr/faults.hpp):
/// how many faults struck its update windows and what became of each. Empty
/// `RunReport::lane_faults` means the run's faults block was disabled.
/// Invariant: injected == corrected + recovered + unrecovered.
struct LaneFaults {
  std::string lane;                ///< "gpu" single-node, device name at scale
  std::int64_t injected = 0;       ///< faults sampled into this lane
  std::int64_t corrected = 0;      ///< repaired in place by the checksums
  std::int64_t recovered = 0;      ///< uncorrectable, recovered by rollback
  std::int64_t unrecovered = 0;    ///< silent, or rollback disabled
  int rollbacks = 0;               ///< update redos triggered on this lane
  double recovery_s = 0.0;         ///< correction + rollback time, in-lane
};

struct RunReport {
  RunOptions options;
  /// The strategy's registry key ("bsr", "original", or a runtime-registered
  /// name). Authoritative where `options.strategy` is not: registry-only
  /// strategies have no StrategyKind, so the enum field holds a BSR
  /// placeholder for them.
  std::string strategy_name;
  sched::RunTrace trace;
  abft::AbftStats abft;

  bool numeric_executed = false;
  double residual = 0.0;         ///< relative factorization residual (numeric)
  bool numeric_correct = true;   ///< residual below threshold

  /// Cost of redoing trailing updates after uncorrectable detections
  /// (RunOptions::recover_uncorrectable); included in seconds()/energy.
  SimTime recovery_time;
  double recovery_energy_j = 0.0;

  /// Per-device breakdown when the run executed on the cluster engine
  /// (RunConfig::devices >= 1): element 0 is the host, then one entry per
  /// accelerator. Empty for classic single-node runs. Totals above already
  /// aggregate these (cpu_energy = host, gpu_energy = all accelerators).
  std::vector<cluster::DeviceUsage> device_usage;

  /// Per-lane fault/recovery accounting when the run's faults block was
  /// enabled (one entry per exposed lane; empty otherwise). The recovery
  /// time in here is already inside seconds() — it delayed the lanes in
  /// place — unlike the additive numeric-mode `recovery_time` above.
  std::vector<LaneFaults> lane_faults;

  [[nodiscard]] double seconds() const {
    return (trace.total_time + recovery_time).seconds();
  }
  [[nodiscard]] double total_energy_j() const {
    return trace.total_energy_j() + recovery_energy_j;
  }
  [[nodiscard]] double cpu_energy_j() const { return trace.cpu_energy_j; }
  [[nodiscard]] double gpu_energy_j() const {
    return trace.gpu_energy_j + recovery_energy_j;
  }
  [[nodiscard]] double ed2p() const {
    return total_energy_j() * seconds() * seconds();
  }
  [[nodiscard]] double gflops() const {
    const double t = seconds();
    return t <= 0.0 ? 0.0 : options.workload().total_flops() / t / 1e9;
  }

  /// Total faults sampled into the run's lanes (0 when faults were off).
  [[nodiscard]] std::int64_t faults_injected() const {
    std::int64_t n = 0;
    for (const LaneFaults& l : lane_faults) n += l.injected;
    return n;
  }
  /// Faults that did NOT corrupt the result: corrected in place or recovered
  /// by rollback.
  [[nodiscard]] std::int64_t faults_covered() const {
    std::int64_t n = 0;
    for (const LaneFaults& l : lane_faults) n += l.corrected + l.recovered;
    return n;
  }
  /// Fraction of injected faults covered (1.0 when nothing was injected) —
  /// the campaign counterpart of fig09's numeric correctness rate.
  [[nodiscard]] double fault_coverage() const {
    const std::int64_t inj = faults_injected();
    return inj == 0 ? 1.0
                    : static_cast<double>(faults_covered()) /
                          static_cast<double>(inj);
  }
  /// Total in-lane recovery time (correction + rollbacks) across lanes.
  [[nodiscard]] double fault_recovery_s() const {
    double s = 0.0;
    for (const LaneFaults& l : lane_faults) s += l.recovery_s;
    return s;
  }

  /// Fraction of energy saved relative to a baseline run (positive = better).
  [[nodiscard]] double energy_saving_vs(const RunReport& baseline) const {
    return 1.0 - total_energy_j() / baseline.total_energy_j();
  }
  [[nodiscard]] double ed2p_reduction_vs(const RunReport& baseline) const {
    return 1.0 - ed2p() / baseline.ed2p();
  }
  [[nodiscard]] double speedup_vs(const RunReport& baseline) const {
    return baseline.seconds() / seconds();
  }
};

}  // namespace bsr::core
