// Trace export: dump a run's per-iteration schedule to CSV so the figures can
// be re-plotted outside the repo (gnuplot / matplotlib / spreadsheets).
#pragma once

#include <iosfwd>
#include <string>

#include "core/report.hpp"

namespace bsr::core {

/// Writes one row per iteration: k, clocks, lane times, slack, energies, ABFT
/// mode. Returns the header written (useful for tests).
std::string write_trace_csv(const RunReport& report, std::ostream& os);

/// Convenience overload writing to a file; throws std::runtime_error when the
/// file cannot be opened.
void write_trace_csv(const RunReport& report, const std::string& path);

}  // namespace bsr::core
