// Global registries and their built-in entries. Construction is lazy
// (function-local statics) so registration order is well-defined and static
// initialization order cannot bite user code that registers its own entries
// from a namespace-scope initializer.
#include "bsr/registry.hpp"

#include <ostream>

#include "bsr/cluster.hpp"
#include "bsr/faults.hpp"
#include "bsr/variability.hpp"
#include "common/cli.hpp"
#include "common/stdio_stream.hpp"
#include "energy/baselines.hpp"
#include "energy/bsr_strategy.hpp"
#include "energy/sr.hpp"

namespace bsr {

Registry<StrategyEntry>& strategies() {
  static Registry<StrategyEntry> reg = [] {
    Registry<StrategyEntry> r("strategy");
    r.add("original",
          {StrategyKind::Original,
           [](const RunConfig&, const predict::WorkloadModel&)
               -> std::unique_ptr<energy::Strategy> {
             return std::make_unique<energy::OriginalStrategy>();
           }});
    r.add("r2h", {StrategyKind::R2H,
                  [](const RunConfig&, const predict::WorkloadModel&)
                      -> std::unique_ptr<energy::Strategy> {
                    return std::make_unique<energy::RaceToHaltStrategy>();
                  }});
    r.add("sr", {StrategyKind::SR,
                 [](const RunConfig&, const predict::WorkloadModel& wl)
                     -> std::unique_ptr<energy::Strategy> {
                   return std::make_unique<energy::SlackReclamationStrategy>(wl);
                 }});
    r.add("bsr", {StrategyKind::BSR,
                  [](const RunConfig& cfg, const predict::WorkloadModel& wl)
                      -> std::unique_ptr<energy::Strategy> {
                    energy::BsrConfig c;
                    c.reclamation_ratio = cfg.reclamation_ratio;
                    c.fc_desired = cfg.fc_desired;
                    c.use_optimized_guardband = cfg.bsr_use_optimized_guardband;
                    c.allow_overclocking = cfg.bsr_allow_overclocking;
                    c.use_enhanced_predictor = cfg.bsr_use_enhanced_predictor;
                    return std::make_unique<energy::BsrStrategy>(wl, c);
                  }});
    r.alias("org", "original");
    return r;
  }();
  return reg;
}

Registry<PlatformFactory>& platforms() {
  static Registry<PlatformFactory> reg = [] {
    Registry<PlatformFactory> r("platform");
    r.add("paper_default", [] { return hw::PlatformProfile::paper_default(); });
    r.add("test_small", [] { return hw::PlatformProfile::test_small(); });
    r.add("numeric_demo", [] { return hw::PlatformProfile::numeric_demo(); });
    r.alias("paper", "paper_default");
    r.alias("default", "paper_default");
    r.alias("numeric", "numeric_demo");
    return r;
  }();
  return reg;
}

Registry<core::AbftPolicy>& abft_policies() {
  static Registry<core::AbftPolicy> reg = [] {
    Registry<core::AbftPolicy> r("abft policy");
    r.add("adaptive", core::AbftPolicy::Adaptive);
    r.add("none", core::AbftPolicy::ForceNone);
    r.add("single", core::AbftPolicy::ForceSingle);
    r.add("full", core::AbftPolicy::ForceFull);
    r.alias("force_none", "none");
    r.alias("force_single", "single");
    r.alias("force_full", "full");
    return r;
  }();
  return reg;
}

Registry<SinkFactory>& result_sinks() {
  static Registry<SinkFactory> reg = [] {
    Registry<SinkFactory> r("result sink");
    r.add("table", [](std::ostream& out) -> std::unique_ptr<ResultSink> {
      return std::make_unique<TableSink>(out);
    });
    r.add("csv", [](std::ostream& out) -> std::unique_ptr<ResultSink> {
      return std::make_unique<CsvSink>(out);
    });
    r.add("json", [](std::ostream& out) -> std::unique_ptr<ResultSink> {
      return std::make_unique<JsonSink>(out);
    });
    return r;
  }();
  return reg;
}

void print_registered_keys(std::ostream& out) {
  // One header per registry with its keys indented beneath it, so the dump
  // stays scannable as registries grow (runtime-registered keys included).
  const auto group = [&out](const char* header,
                            const std::vector<std::string>& keys) {
    out << header << '\n' << " ";
    for (std::size_t i = 0; i < keys.size(); ++i) {
      out << (i == 0 ? " " : ", ") << keys[i];
    }
    out << '\n';
  };
  group("strategies", strategies().keys());
  group("platforms", platforms().keys());
  group("abft policies", abft_policies().keys());
  group("result sinks", result_sinks().keys());
  group("cluster profiles", cluster_profiles().keys());
  group("collectives", collectives().keys());
  group("variability presets", variability_presets().keys());
  group("fault presets", fault_presets().keys());
}

Cli& add_list_flag(Cli& cli) {
  return cli.arg_flag("list",
                      "print every registry's keys grouped under headers "
                      "(strategies / platforms / abft policies / result "
                      "sinks / cluster profiles / collectives / variability "
                      "presets / fault presets) and exit");
}

bool handled_list_flag(const Cli& cli) {
  if (!cli.get_bool("list")) return false;
  print_registered_keys(stdout_stream());
  return true;
}

hw::PlatformProfile make_platform(const std::string& key) {
  return platforms().get(key)();
}

std::unique_ptr<energy::Strategy> make_strategy(
    const RunConfig& cfg, const predict::WorkloadModel& wl) {
  return strategies().get(cfg.strategy).make(cfg, wl);
}

std::unique_ptr<ResultSink> make_result_sink(const std::string& key,
                                             std::ostream& out) {
  return result_sinks().get(key)(out);
}

}  // namespace bsr
