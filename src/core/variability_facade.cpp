// Implementation of the bsr/variability.hpp facade: the preset registry and
// the benches' shared --variability/--seed flag plumbing. Validation,
// fingerprinting, and the models themselves live in src/var/.
#include "bsr/variability.hpp"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "common/cli.hpp"

namespace bsr {

Registry<VariabilityConfig>& variability_presets() {
  static Registry<VariabilityConfig> reg = [] {
    Registry<VariabilityConfig> r("variability preset");
    r.add("off", VariabilityConfig{});

    // The Fig. 8 regime: pure efficiency drift, everything else exact. A
    // 2%-per-iteration walk reaches ~15% excursions over the paper's 60
    // iterations — the scale of the efficiency change the paper reports for
    // shrinking trailing updates.
    VariabilityConfig drift;
    drift.enabled = true;
    drift.drift = 0.02;
    r.add("drift", drift);

    // Mild all-around noise: what a healthy, dedicated machine shows.
    VariabilityConfig jitter;
    jitter.enabled = true;
    jitter.drift = 0.008;
    jitter.transfer_jitter = 0.05;
    jitter.dvfs_jitter = 0.10;
    r.add("jitter", jitter);

    // A pessimistic machine: drifting kernels, noisy links, slow and coarse
    // DVFS, and a boost budget tight enough that BSR's overclocked critical
    // lane throttles on long runs.
    VariabilityConfig hostile;
    hostile.enabled = true;
    hostile.drift = 0.02;
    hostile.transfer_jitter = 0.15;
    hostile.dvfs_jitter = 0.25;
    hostile.freq_quantum_mhz = 200;
    hostile.boost_budget_s = 5.0;
    hostile.boost_recovery = 0.25;
    r.add("hostile", hostile);

    r.alias("none", "off");
    r.alias("fig08", "drift");
    r.alias("mild", "jitter");
    r.alias("throttle", "hostile");
    return r;
  }();
  return reg;
}

VariabilityConfig make_variability(const std::string& key) {
  return variability_presets().get(key);
}

Cli& add_variability_flags(Cli& cli) {
  return cli
      .arg_string("variability", "off",
                  "variability preset registry key (off, drift, jitter, "
                  "hostile)")
      .arg_int("seed", 42, "root seed for noise and variability streams");
}

void apply_variability_flags_or_exit(const Cli& cli, RunConfig& cfg) {
  cfg.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  try {
    cfg.variability = make_variability(cli.get("variability"));
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    std::exit(2);
  }
}

}  // namespace bsr
