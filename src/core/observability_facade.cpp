// Implementation of the bsr/observability.hpp facade: run-level trace
// metadata, the run-and-export helper, and the benches' --trace / --version
// flag helpers.
#include "bsr/observability.hpp"

#include <fstream>
#include <stdexcept>

#include "bsr/registry.hpp"
#include "bsr/run_config.hpp"
#include "common/cli.hpp"
#include "common/stdio_stream.hpp"

namespace bsr {

TraceMeta trace_meta_for(const RunConfig& cfg, const std::string& tool) {
  TraceMeta meta;
  meta.tool = tool;
  meta.fingerprint = cfg.fingerprint();
  meta.strategy = strategies().canonical(cfg.strategy);
  // Lane 0 is always the host; cluster runs add one lane per device, the
  // single-node pipeline has exactly the CPU and GPU lanes.
  meta.lanes = cfg.devices >= 1 ? 1 + cfg.devices : 2;
  return meta;
}

core::RunReport run_traced(const RunConfig& cfg, const std::string& path,
                           const std::string& tool) {
  RunConfig traced = cfg;
  obs::TraceRecorder recorder;
  traced.trace = &recorder;
  core::RunReport report = run(traced);
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    throw std::runtime_error("run_traced: cannot open trace path \"" + path +
                             "\"");
  }
  write_chrome_trace(out, recorder, trace_meta_for(cfg, tool));
  out.flush();
  if (!out) {
    throw std::runtime_error("run_traced: write failed for \"" + path + "\"");
  }
  return report;
}

Cli& add_trace_flag(Cli& cli) {
  return cli.arg_string("trace", "",
                        "write a Chrome/Perfetto trace-event JSON of the "
                        "run's scheduling decisions to this path (empty = "
                        "tracing off; see docs/OBSERVABILITY.md)");
}

std::string trace_path(const Cli& cli) { return cli.get("trace", ""); }

Cli& add_version_flag(Cli& cli) {
  return cli.arg_flag("version",
                      "print the build stamp (git describe, compiler, build "
                      "type, flags) and exit");
}

bool handled_version_flag(const Cli& cli, const std::string& tool) {
  if (!cli.get_bool("version", false)) return false;
  stdout_stream() << build_info_line(tool) << "\n";
  return true;
}

}  // namespace bsr
