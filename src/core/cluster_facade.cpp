// Implementation of the bsr/cluster.hpp facade: the cluster-profile registry,
// RunConfig lowering into the cluster engine, RunReport aggregation, and the
// scaling sweep axes.
#include "bsr/cluster.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

namespace bsr {

Registry<ClusterProfileFactory>& cluster_profiles() {
  static Registry<ClusterProfileFactory> reg = [] {
    Registry<ClusterProfileFactory> r("cluster profile");
    r.add("paper_cluster", [](int devices) {
      cluster::check_profile_capacity("paper_cluster", devices, 16);
      return cluster::ClusterProfile::paper_scaleout(devices);
    });
    r.add("nvlink_pairs", [](int devices) {
      cluster::check_profile_capacity("nvlink_pairs", devices, 16);
      return cluster::ClusterProfile::nvlink_pairs(devices);
    });
    r.add("rack_4x8", [](int devices) {
      return cluster::ClusterProfile::rack(devices, 8, 4, "rack_4x8");
    });
    r.add("rack_8x8", [](int devices) {
      return cluster::ClusterProfile::rack(devices, 8, 8, "rack_8x8");
    });
    r.alias("pcie", "paper_cluster");
    r.alias("nvlink", "nvlink_pairs");
    r.alias("rack", "rack_8x8");
    return r;
  }();
  return reg;
}

cluster::ClusterProfile make_cluster_profile(const std::string& key,
                                             int devices) {
  return cluster_profiles().get(key)(devices);
}

ClusterProfileInfo cluster_profile_info(const std::string& key) {
  const std::string canon = cluster_profiles().canonical(key);
  if (canon == "paper_cluster" || canon == "nvlink_pairs") return {16, 0};
  if (canon == "rack_4x8") return {32, 8};
  if (canon == "rack_8x8") return {64, 8};
  return {};  // runtime-registered profile: permissive flat default
}

Registry<ClusterCollective>& collectives() {
  static Registry<ClusterCollective> reg = [] {
    Registry<ClusterCollective> r("collective");
    r.add("auto", std::nullopt);
    r.add("relay", cluster::BroadcastSchedule::Relay);
    r.add("ring", cluster::BroadcastSchedule::Ring);
    r.add("tree", cluster::BroadcastSchedule::Tree);
    r.alias("binomial", "tree");
    return r;
  }();
  return reg;
}

ResolvedClusterLayout resolved_cluster_layout(const RunConfig& cfg) {
  const ClusterProfileInfo info = cluster_profile_info(cfg.cluster);
  ResolvedClusterLayout lay;
  if (cfg.grid_p > 0) {
    lay.grid_p = cfg.grid_p;
    lay.grid_q = cfg.grid_q;
  } else if (info.devices_per_node > 0) {
    // Near-square grid: q the largest divisor of devices with q <= sqrt,
    // p >= q — the ScaLAPACK rule of thumb for minimizing broadcast volume.
    int q = 1;
    for (int c = 1; c * c <= cfg.devices; ++c) {
      if (cfg.devices % c == 0) q = c;
    }
    lay.grid_p = cfg.devices / q;
    lay.grid_q = q;
  } else {
    lay.grid_p = cfg.devices;
    lay.grid_q = 1;
  }
  const ClusterCollective coll = collectives().get(cfg.collective);
  lay.schedule = coll.has_value() ? *coll
                 : info.devices_per_node > 0
                     ? cluster::BroadcastSchedule::Tree
                     : cluster::BroadcastSchedule::Relay;
  return lay;
}

RunConfig ClusterConfig::lowered() const {
  RunConfig cfg = base;
  cfg.devices = devices;
  cfg.cluster = profile;
  return cfg;
}

namespace {

cluster::ClusterOptions lower_options(const RunConfig& cfg) {
  cluster::ClusterOptions o;
  // Registry-only strategies were already rejected by cfg.validate() on
  // every path into here; value() turns a violated precondition into a loud
  // bad_optional_access instead of silently running the wrong policy.
  const StrategyEntry& entry = strategies().get(cfg.strategy);
  switch (entry.kind.value()) {
    case core::StrategyKind::Original:
      o.strategy = cluster::ClusterStrategy::Original;
      break;
    case core::StrategyKind::R2H:
      o.strategy = cluster::ClusterStrategy::R2H;
      break;
    case core::StrategyKind::SR:
      o.strategy = cluster::ClusterStrategy::SR;
      break;
    case core::StrategyKind::BSR:
      o.strategy = cluster::ClusterStrategy::BSR;
      break;
  }
  o.bsr.reclamation_ratio = cfg.reclamation_ratio;
  o.bsr.fc_desired = cfg.fc_desired;
  o.bsr.use_optimized_guardband = cfg.bsr_use_optimized_guardband;
  o.bsr.allow_overclocking = cfg.bsr_allow_overclocking;
  o.bsr.use_enhanced_predictor = cfg.bsr_use_enhanced_predictor;
  switch (abft_policies().get(cfg.abft_policy)) {
    case core::AbftPolicy::Adaptive: break;  // nullopt = per-device ABFT-OC
    case core::AbftPolicy::ForceNone:
      o.forced_abft = abft::ChecksumMode::None;
      break;
    case core::AbftPolicy::ForceSingle:
      o.forced_abft = abft::ChecksumMode::SingleSide;
      break;
    case core::AbftPolicy::ForceFull:
      o.forced_abft = abft::ChecksumMode::Full;
      break;
  }
  o.seed = cfg.seed;
  o.noise.enabled = cfg.noise_enabled;
  o.variability = cfg.variability;
  o.faults = cfg.faults;
  o.trace = cfg.trace;
  const ResolvedClusterLayout lay = resolved_cluster_layout(cfg);
  // The resolved 1-D layout lowers to the engine's 0/0 default so flat
  // profiles drive the exact pre-grid code path.
  if (lay.grid_q != 1 || lay.grid_p != cfg.devices) {
    o.grid_p = lay.grid_p;
    o.grid_q = lay.grid_q;
  }
  o.schedule = lay.schedule;
  o.rebalance = cfg.rebalance;
  return o;
}

cluster::ClusterProfile profile_for(const RunConfig& cfg) {
  cluster::ClusterProfile profile =
      make_cluster_profile(cfg.cluster, cfg.devices);
  if (cfg.error_rate_multiplier != 1.0) {
    for (hw::DeviceModel& dev : profile.devices) {
      dev.errors = dev.errors.scaled(cfg.error_rate_multiplier);
    }
  }
  return profile;
}

core::RunReport wrap(const RunConfig& cfg, const cluster::ClusterReport& cr) {
  core::RunReport report;
  report.options = cfg.options();
  report.strategy_name = strategies().canonical(cfg.strategy);
  report.trace.total_time = cr.makespan;
  report.trace.cpu_energy_j = cr.host.energy_j;
  report.trace.gpu_energy_j = cr.device_energy_j();
  // ABFT coverage is accounted per device: the run-level counters aggregate
  // device-iterations (a device that ran its local update under single-side
  // checksums counts once), so overhead ratios stay comparable across device
  // counts.
  for (const cluster::DeviceUsage& dev : cr.devices) {
    report.abft.iterations_unprotected +=
        static_cast<int>(dev.iters_unprotected);
    report.abft.iterations_protected_single +=
        static_cast<int>(dev.iters_single);
    report.abft.iterations_protected_full += static_cast<int>(dev.iters_full);
  }
  report.device_usage.reserve(1 + cr.devices.size());
  report.device_usage.push_back(cr.host);
  for (const cluster::DeviceUsage& dev : cr.devices) {
    report.device_usage.push_back(dev);
  }
  if (cfg.faults.enabled) {
    // Per-lane fault accounting (host excluded: panels are not exposed) plus
    // the run-level ABFT counters, mirroring the single-node aggregation in
    // core/decomposer.cpp. The statistical process does not class-resolve
    // per device, so the class-level injected split is folded into 0D.
    for (const cluster::DeviceUsage& dev : cr.devices) {
      core::LaneFaults lf;
      lf.lane = dev.name;
      lf.injected = dev.faults_injected;
      lf.corrected = dev.faults_corrected;
      lf.recovered = dev.faults_recovered;
      lf.unrecovered = dev.faults_unrecovered;
      lf.rollbacks = dev.rollbacks;
      lf.recovery_s = dev.recovery_s;
      report.lane_faults.push_back(lf);
      report.abft.errors_injected_0d += static_cast<int>(dev.faults_injected);
      report.abft.corrected_0d += static_cast<int>(dev.faults_corrected);
      report.abft.uncorrectable += static_cast<int>(dev.faults_uncorrectable);
      report.abft.recoveries += dev.rollbacks;
    }
  }
  return report;
}

}  // namespace

core::RunReport run_cluster(const RunConfig& cfg) {
  cfg.validate();
  if (cfg.devices < 1) {
    throw std::invalid_argument(
        "run_cluster: need devices >= 1 (got " + std::to_string(cfg.devices) +
        "); devices = 0 is the single-node path (bsr::run)");
  }
  const cluster::ClusterProfile profile = profile_for(cfg);
  const cluster::ClusterReport cr =
      cluster::run_cluster(profile, cfg.workload(), lower_options(cfg));
  return wrap(cfg, cr);
}

core::RunReport run_cluster(const ClusterConfig& cfg) {
  return run_cluster(cfg.lowered());
}

cluster::ClusterReport run_cluster_detailed(const ClusterConfig& cfg) {
  const RunConfig lowered = cfg.lowered();
  lowered.validate();
  if (lowered.devices < 1) {
    throw std::invalid_argument("run_cluster_detailed: need devices >= 1");
  }
  return cluster::run_cluster(profile_for(lowered), lowered.workload(),
                              lower_options(lowered));
}

Axis devices_axis(const std::vector<int>& counts) {
  Axis axis{"devices", {}};
  for (const int g : counts) {
    axis.points.push_back(
        {std::to_string(g), [g](RunConfig& c) { c.devices = g; }});
  }
  return axis;
}

Axis weak_devices_axis(const std::vector<int>& counts, std::int64_t n1) {
  Axis axis{"devices", {}};
  for (const int g : counts) {
    // Constant flops per device: n^3 total work => n grows with d^(1/3),
    // rounded to the 256 grid the tuned block sizes like. The 1-device point
    // only sets the device count — n (and the base config's block size) stay
    // exactly as given, so it fingerprints identically to a strong-scaling
    // cell of the same base and is served from the shared result cache.
    if (g == 1) {
      axis.points.push_back({"1", [](RunConfig& c) { c.devices = 1; }});
      continue;
    }
    const double scaled =
        static_cast<double>(n1) * std::cbrt(static_cast<double>(g));
    const std::int64_t n = std::max(
        n1,
        static_cast<std::int64_t>(std::llround(scaled / 256.0) * 256));
    axis.points.push_back({std::to_string(g), [g, n](RunConfig& c) {
                             c.devices = g;
                             c.n = n;
                             c.b = 0;  // re-tune the block for the new size
                           }});
  }
  return axis;
}

}  // namespace bsr
