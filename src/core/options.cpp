#include "core/options.hpp"

#include <algorithm>
#include <stdexcept>

namespace bsr::core {

std::int64_t tuned_block(std::int64_t n) {
  const std::int64_t raw = (n / 60 + 32) / 64 * 64;
  return std::clamp<std::int64_t>(raw, 64, 512);
}

const char* to_string(StrategyKind s) {
  switch (s) {
    case StrategyKind::Original: return "Original";
    case StrategyKind::R2H: return "R2H";
    case StrategyKind::SR: return "SR";
    case StrategyKind::BSR: return "BSR";
  }
  return "?";
}

const char* to_string(ExecutionMode m) {
  return m == ExecutionMode::TimingOnly ? "TimingOnly" : "Numeric";
}

namespace {
std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}
}  // namespace

StrategyKind strategy_from_string(const std::string& s) {
  const std::string v = lower(s);
  if (v == "original" || v == "org") return StrategyKind::Original;
  if (v == "r2h") return StrategyKind::R2H;
  if (v == "sr") return StrategyKind::SR;
  if (v == "bsr") return StrategyKind::BSR;
  throw std::invalid_argument("unknown strategy: " + s);
}

predict::Factorization factorization_from_string(const std::string& s) {
  const std::string v = lower(s);
  if (v == "cholesky" || v == "cho") return predict::Factorization::Cholesky;
  if (v == "lu") return predict::Factorization::LU;
  if (v == "qr") return predict::Factorization::QR;
  throw std::invalid_argument("unknown factorization: " + s);
}

}  // namespace bsr::core
