#include "core/options.hpp"

#include <algorithm>
#include <stdexcept>

#include "bsr/registry.hpp"
#include "common/ascii.hpp"

namespace bsr::core {

std::int64_t tuned_block(std::int64_t n) {
  const std::int64_t raw = (n / 60 + 32) / 64 * 64;
  return std::clamp<std::int64_t>(raw, 64, 512);
}

const char* to_string(StrategyKind s) {
  switch (s) {
    case StrategyKind::Original: return "Original";
    case StrategyKind::R2H: return "R2H";
    case StrategyKind::SR: return "SR";
    case StrategyKind::BSR: return "BSR";
  }
  return "?";
}

const char* to_string(ExecutionMode m) {
  return m == ExecutionMode::TimingOnly ? "TimingOnly" : "Numeric";
}

const char* to_string(AbftPolicy p) {
  switch (p) {
    case AbftPolicy::Adaptive: return "Adaptive";
    case AbftPolicy::ForceNone: return "ForceNone";
    case AbftPolicy::ForceSingle: return "ForceSingle";
    case AbftPolicy::ForceFull: return "ForceFull";
  }
  return "?";
}

StrategyKind strategy_from_string(const std::string& s) {
  const StrategyEntry& entry = strategies().get(s);
  if (!entry.kind) {
    throw std::invalid_argument(
        "strategy \"" + s +
        "\" is registry-only (no legacy StrategyKind); use the bsr::RunConfig "
        "API");
  }
  return *entry.kind;
}

AbftPolicy abft_policy_from_string(const std::string& s) {
  return abft_policies().get(s);
}

predict::Factorization factorization_from_string(const std::string& s) {
  const std::string v = ascii_lower(s);
  if (v == "cholesky" || v == "cho") return predict::Factorization::Cholesky;
  if (v == "lu") return predict::Factorization::LU;
  if (v == "qr") return predict::Factorization::QR;
  throw std::invalid_argument("unknown factorization: " + s);
}

}  // namespace bsr::core
