#include "core/decomposer.hpp"

#include <algorithm>
#include <optional>
#include <stdexcept>
#include <vector>

#include "abft/update.hpp"
#include "bsr/cluster.hpp"
#include "bsr/registry.hpp"
#include "fault/injector.hpp"
#include "la/lapack.hpp"
#include "la/verify.hpp"

namespace bsr::core {

using la::idx;

namespace {

/// Relative residual above which a numeric result counts as corrupted. Clean
/// double-precision runs land around 1e-13 (single precision around 1e-5); a
/// single surviving SDC of our injected magnitude pushes the residual many
/// orders of magnitude higher either way.
template <typename T>
constexpr double residual_threshold() {
  return sizeof(T) == 8 ? 1e-6 : 1e-2;
}

class NumericRunnerBase {
 public:
  virtual ~NumericRunnerBase() = default;
  /// Returns the number of recovery recomputations performed.
  virtual int run_iteration(const sched::IterationOutcome& o,
                            abft::AbftStats& stats) = 0;
  [[nodiscard]] virtual double final_residual() const = 0;
  [[nodiscard]] virtual double threshold() const = 0;
};

/// Executes the real factorization iteration-by-iteration, mirroring the
/// simulated pipeline's schedule: the strategy's frequency choice determines
/// the SDC rates, the simulated GPU busy time determines the exposure window,
/// and the chosen checksum mode determines what gets detected and repaired.
template <typename T>
class NumericRunner final : public NumericRunnerBase {
 public:
  NumericRunner(const RunOptions& opts, const hw::DeviceModel& gpu)
      : opts_(opts), gpu_(gpu), injector_(Rng(opts.seed ^ 0xFA17FA17ull)) {
    Rng rng(opts.seed);
    a_ = la::Matrix<T>(opts.n, opts.n);
    if (opts.factorization == predict::Factorization::Cholesky) {
      la::fill_spd(a_.view(), rng);
    } else {
      la::fill_random(a_.view(), rng);
    }
    a0_ = a_;
    if (opts.factorization == predict::Factorization::LU) {
      ipiv_.assign(opts.n, 0);
    }
    if (opts.factorization == predict::Factorization::QR) {
      tau_.assign(opts.n, T(0));
    }
  }

  int run_iteration(const sched::IterationOutcome& o,
                    abft::AbftStats& stats) override {
    recoveries_ = 0;
    switch (opts_.factorization) {
      case predict::Factorization::Cholesky: iterate_cholesky(o, stats); break;
      case predict::Factorization::LU: iterate_lu(o, stats); break;
      case predict::Factorization::QR: iterate_qr(o, stats); break;
    }
    return recoveries_;
  }

  [[nodiscard]] double threshold() const override {
    return residual_threshold<T>();
  }

  [[nodiscard]] double final_residual() const override {
    switch (opts_.factorization) {
      case predict::Factorization::Cholesky:
        return la::cholesky_residual(a0_.view(), a_.view());
      case predict::Factorization::LU:
        return la::lu_residual(a0_.view(), a_.view(), ipiv_);
      case predict::Factorization::QR:
        return la::qr_residual(a0_.view(), a_.view(), tau_);
    }
    return 0.0;
  }

 private:
  /// Injects SDCs into the GPU-written region per the iteration's clock and
  /// busy time, then (if protected) scrubs with the checksums. Returns the
  /// number of mismatched blocks the checksums could not repair.
  int expose_and_scrub(la::MatrixView<T> region, abft::BlockChecksums<T>* chk,
                       const sched::IterationOutcome& o,
                       abft::AbftStats& stats) {
    const hw::ErrorRates rates =
        gpu_.errors.rates(o.gpu_freq, hw::Guardband::Optimized);
    const fault::InjectionCounts counts =
        injector_.inject(region, rates, o.pu_tmu);
    stats.errors_injected_0d += counts.d0;
    stats.errors_injected_1d += counts.d1;
    stats.errors_injected_2d += counts.d2;
    if (chk == nullptr) return 0;
    const abft::VerifyResult r = abft::scrub(*chk, region);
    stats.merge_verify(r);
    return r.uncorrectable;
  }

  void iterate_lu(const sched::IterationOutcome& o, abft::AbftStats& stats) {
    const idx n = opts_.n;
    const idx j0 = static_cast<idx>(o.k) * opts_.b;
    const idx m = n - j0;
    const idx bb = std::min<idx>(opts_.b, m);
    const idx mt = m - bb;

    std::vector<idx> piv;
    la::getf2(a_.block(j0, j0, m, bb), piv);
    for (idx i = 0; i < bb; ++i) {
      const idx r = j0 + i;
      const idx p = piv[i] + j0;
      ipiv_[r] = p;
      if (p != r) {
        // The panel already swapped its own columns; swap the rest.
        if (j0 > 0) la::swap(j0, &a_(r, 0), n, &a_(p, 0), n);
        if (j0 + bb < n) {
          la::swap(n - j0 - bb, &a_(r, j0 + bb), n, &a_(p, j0 + bb), n);
        }
      }
    }
    if (mt <= 0) return;

    la::trsm(la::Side::Left, la::Uplo::Lower, la::Op::NoTrans, la::Diag::Unit,
             T(1), a_.block(j0, j0, bb, bb).as_const(),
             a_.block(j0, j0 + bb, bb, mt));
    auto l21 = a_.block(j0 + bb, j0, mt, bb).as_const();
    auto u12 = a_.block(j0, j0 + bb, bb, mt).as_const();
    auto c = a_.block(j0 + bb, j0 + bb, mt, mt);

    if (o.abft_mode == abft::ChecksumMode::None) {
      la::gemm(la::Op::NoTrans, la::Op::NoTrans, T(-1), l21, u12, T(1), c);
      expose_and_scrub(c, nullptr, o, stats);
      return;
    }
    // Genuine ABFT flow: encode the pre-update trailing matrix, propagate the
    // checksums *through* the GEMM (no re-encode), then detect/correct.
    la::Matrix<T> snapshot;
    if (opts_.recover_uncorrectable) snapshot = la::to_matrix(c.as_const());
    abft::BlockChecksums<T> chk(mt, mt, bb, o.abft_mode);
    chk.encode(c.as_const());
    abft::protected_gemm_update(c, l21, u12, chk);
    if (expose_and_scrub(c, &chk, o, stats) > 0 && opts_.recover_uncorrectable) {
      // Roll back and recompute the trailing update at a safe clock.
      la::copy_into(snapshot.view().as_const(), c);
      la::gemm(la::Op::NoTrans, la::Op::NoTrans, T(-1), l21, u12, T(1), c);
      ++stats.recoveries;
      ++recoveries_;
    }
  }

  void iterate_cholesky(const sched::IterationOutcome& o,
                        abft::AbftStats& stats) {
    const idx n = opts_.n;
    const idx j0 = static_cast<idx>(o.k) * opts_.b;
    const idx m = n - j0;
    const idx bb = std::min<idx>(opts_.b, m);
    const idx mt = m - bb;

    auto akk = a_.block(j0, j0, bb, bb);
    if (la::potf2(akk) != 0) {
      throw std::runtime_error("Cholesky: matrix lost positive definiteness");
    }
    if (mt <= 0) return;

    la::trsm(la::Side::Right, la::Uplo::Lower, la::Op::Trans, la::Diag::NonUnit,
             T(1), akk.as_const(), a_.block(j0 + bb, j0, mt, bb));
    auto l21 = a_.block(j0 + bb, j0, mt, bb).as_const();
    // TMU kept as a full (symmetric) GEMM so checksum propagation applies; the
    // factorization itself only ever reads the lower triangle.
    la::Matrix<T> l21t(bb, mt);
    for (idx j = 0; j < mt; ++j) {
      for (idx i = 0; i < bb; ++i) l21t(i, j) = l21(j, i);
    }
    auto c = a_.block(j0 + bb, j0 + bb, mt, mt);
    if (o.abft_mode == abft::ChecksumMode::None) {
      la::gemm(la::Op::NoTrans, la::Op::NoTrans, T(-1), l21,
               l21t.view().as_const(), T(1), c);
      expose_and_scrub(c, nullptr, o, stats);
      return;
    }
    la::Matrix<T> snapshot;
    if (opts_.recover_uncorrectable) snapshot = la::to_matrix(c.as_const());
    abft::BlockChecksums<T> chk(mt, mt, bb, o.abft_mode);
    chk.encode(c.as_const());
    abft::protected_gemm_update(c, l21, l21t.view().as_const(), chk);
    if (expose_and_scrub(c, &chk, o, stats) > 0 && opts_.recover_uncorrectable) {
      la::copy_into(snapshot.view().as_const(), c);
      la::gemm(la::Op::NoTrans, la::Op::NoTrans, T(-1), l21,
               l21t.view().as_const(), T(1), c);
      ++stats.recoveries;
      ++recoveries_;
    }
  }

  void iterate_qr(const sched::IterationOutcome& o, abft::AbftStats& stats) {
    const idx n = opts_.n;
    const idx j0 = static_cast<idx>(o.k) * opts_.b;
    const idx m = n - j0;
    const idx bb = std::min<idx>(opts_.b, m);
    const idx tc = n - j0 - bb;

    std::vector<T> ptau;
    la::geqr2(a_.block(j0, j0, m, bb), ptau);
    std::copy(ptau.begin(), ptau.end(), tau_.begin() + j0);
    if (tc <= 0) return;

    auto v = a_.block(j0, j0, m, bb).as_const();
    la::Matrix<T> t(bb, bb);
    la::larft(v, ptau.data(), t.view());
    auto c = a_.block(j0, j0 + bb, m, tc);
    la::Matrix<T> snapshot;
    if (opts_.recover_uncorrectable && o.abft_mode != abft::ChecksumMode::None) {
      snapshot = la::to_matrix(c.as_const());
    }
    la::larfb_left_trans(v, t.view().as_const(), c);

    if (o.abft_mode == abft::ChecksumMode::None) {
      expose_and_scrub(c, nullptr, o, stats);
      return;
    }
    // Block reflectors are not a plain GEMM from the checksums' viewpoint, so
    // the trailing region is re-encoded from the computed result each
    // iteration (detection interval unchanged; cost charged via Table 2).
    abft::BlockChecksums<T> chk(m, tc, bb, o.abft_mode);
    chk.encode(c.as_const());
    if (expose_and_scrub(c, &chk, o, stats) > 0 && opts_.recover_uncorrectable) {
      la::copy_into(snapshot.view().as_const(), c);
      la::larfb_left_trans(v, t.view().as_const(), c);
      ++stats.recoveries;
      ++recoveries_;
    }
  }

  RunOptions opts_;
  const hw::DeviceModel& gpu_;
  fault::Injector injector_;
  int recoveries_ = 0;
  la::Matrix<T> a_;
  la::Matrix<T> a0_;
  std::vector<idx> ipiv_;
  std::vector<T> tau_;
};

}  // namespace

Decomposer::Decomposer(hw::PlatformProfile platform)
    : platform_(std::move(platform)) {}

std::unique_ptr<energy::Strategy> Decomposer::make_strategy(
    StrategyKind kind, const predict::WorkloadModel& wl, const RunOptions& opts,
    const ExtendedOptions& ext) {
  RunOptions named = opts;
  named.strategy = kind;
  return bsr::make_strategy(from_legacy(named, ext), wl);
}

RunReport Decomposer::run(const RunConfig& cfg) const {
  cfg.validate();
  if (cfg.devices >= 1) {
    // Cluster runs resolve their own profile (cfg.cluster); this Decomposer's
    // single-node platform does not apply.
    return bsr::run_cluster(cfg);
  }
  // Lower to the legacy structs the pipeline still speaks. Registry-only
  // strategies carry no StrategyKind; the report's legacy `options.strategy`
  // field is then a placeholder (BSR) — SweepRow::config keeps the real name.
  const StrategyEntry& entry = strategies().get(cfg.strategy);
  RunConfig lowered = cfg;
  lowered.strategy = "bsr";
  RunOptions opts = lowered.options();
  opts.strategy = entry.kind.value_or(StrategyKind::BSR);
  const ExtendedOptions ext = cfg.extended();
  const auto strategy = entry.make(cfg, opts.workload());
  RunReport report = run_with(opts, ext, *strategy);
  if (!entry.kind) {
    // No StrategyKind exists for registry-only strategies; record the real
    // name so summarize()/consumers do not mislabel the run as BSR.
    report.strategy_name = strategies().canonical(cfg.strategy);
  }
  return report;
}

RunReport Decomposer::run(const RunOptions& opts, const ExtendedOptions& ext) const {
  const auto strategy = make_strategy(opts.strategy, opts.workload(), opts, ext);
  return run_with(opts, ext, *strategy);
}

RunReport Decomposer::run_with(const RunOptions& opts, const ExtendedOptions& ext,
                               energy::Strategy& strategy) const {
  if (opts.n <= 0 || opts.b <= 0 || opts.b > opts.n) {
    throw std::invalid_argument("RunOptions: need 0 < b <= n");
  }
  const predict::WorkloadModel wl = opts.workload();
  sched::PipelineConfig cfg;
  cfg.workload = wl;
  cfg.noise.enabled = opts.noise_enabled;
  cfg.seed = opts.seed;
  cfg.variability = opts.variability;
  cfg.faults = opts.faults;
  cfg.trace = opts.trace;
  // The error-rate multiplier rescales the *platform* so the coverage math,
  // the BSR/ABFT-OC frequency policy, and the fault injector all observe the
  // same world (DESIGN.md: exposure compression for reduced-size numerics).
  // The deep copy is skipped at the default multiplier (sweeps run thousands
  // of cells; the copy was pure overhead on every one of them).
  std::optional<hw::PlatformProfile> scaled;
  if (opts.error_rate_multiplier != 1.0) {
    scaled = platform_;
    scaled->gpu.errors = scaled->gpu.errors.scaled(opts.error_rate_multiplier);
  }
  const hw::PlatformProfile& platform = scaled ? *scaled : platform_;
  sched::HybridPipeline pipe(platform, cfg);

  RunReport report;
  report.options = opts;

  std::unique_ptr<NumericRunnerBase> numeric;
  if (opts.mode == ExecutionMode::Numeric) {
    if (opts.elem_bytes == 4) {
      numeric = std::make_unique<NumericRunner<float>>(opts, platform.gpu);
    } else {
      numeric = std::make_unique<NumericRunner<double>>(opts, platform.gpu);
    }
    report.numeric_executed = true;
  }

  for (int k = 0; k < pipe.num_iterations(); ++k) {
    sched::IterationDecision d = strategy.decide(k, pipe);
    switch (ext.abft_policy) {
      case AbftPolicy::Adaptive: break;
      case AbftPolicy::ForceNone: d.abft_mode = abft::ChecksumMode::None; break;
      case AbftPolicy::ForceSingle:
        d.abft_mode = abft::ChecksumMode::SingleSide;
        break;
      case AbftPolicy::ForceFull: d.abft_mode = abft::ChecksumMode::Full; break;
    }
    const sched::IterationOutcome o = pipe.run_iteration(k, d);
    strategy.observe(k, o);
    report.trace.add(o);
    switch (o.abft_mode) {
      case abft::ChecksumMode::None: ++report.abft.iterations_unprotected; break;
      case abft::ChecksumMode::SingleSide:
        ++report.abft.iterations_protected_single;
        break;
      case abft::ChecksumMode::Full: ++report.abft.iterations_protected_full; break;
    }
    if (numeric) {
      const int recoveries = numeric->run_iteration(o, report.abft);
      if (recoveries > 0) {
        // The redo runs the GPU op again at the base clock (safe, fault-free)
        // with the verification pass repeated.
        const sched::TaskDurations redo = sched::compute_durations(
            wl, k, platform, platform.cpu.freq.base_mhz,
            platform.gpu.freq.base_mhz, d.abft_mode);
        const SimTime penalty =
            (redo.pu + redo.tmu + redo.chk_update + redo.chk_verify) *
            static_cast<double>(recoveries);
        report.recovery_time += penalty;
        report.recovery_energy_j +=
            platform.gpu.busy_power(platform.gpu.freq.base_mhz,
                                    d.gpu_guardband) *
            penalty.seconds();
      }
    }
  }

  if (numeric) {
    report.residual = numeric->final_residual();
    report.numeric_correct = report.residual < numeric->threshold();
  }

  if (opts.faults.enabled) {
    // Aggregate the statistical fault campaign (faultcamp/process.hpp) into
    // the run-level ABFT stats and the per-lane accounting. The recovery
    // time below is already inside trace.total_time — it delayed the GPU
    // lane in place — so it is reported, not re-added.
    LaneFaults gpu;
    gpu.lane = "gpu";
    for (const sched::IterationOutcome& o : report.trace.iterations) {
      const faultcamp::Resolution& f = o.faults;
      report.abft.errors_injected_0d += static_cast<int>(f.injected.d0);
      report.abft.errors_injected_1d += static_cast<int>(f.injected.d1);
      report.abft.errors_injected_2d += static_cast<int>(f.injected.d2);
      report.abft.corrected_0d += static_cast<int>(f.corrected_d0);
      report.abft.corrected_1d += static_cast<int>(f.corrected_d1);
      report.abft.uncorrectable += static_cast<int>(f.uncorrectable);
      report.abft.recoveries += f.rollbacks;
      gpu.injected += f.injected.total();
      gpu.corrected += f.corrected();
      gpu.recovered += f.recovered;
      gpu.unrecovered += f.unrecovered;
      gpu.rollbacks += f.rollbacks;
      gpu.recovery_s += o.recovery.seconds();
    }
    report.lane_faults.push_back(gpu);
  }
  return report;
}

}  // namespace bsr::core
