// Implementation of the bsr/faults.hpp facade: the fault-preset registry,
// the benches' shared --faults flag plumbing, and the FaultCampaign runner on
// top of bsr::Sweep. Validation, fingerprinting, and the processes themselves
// live in src/faultcamp/.
#include "bsr/faults.hpp"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <utility>

#include "common/arena.hpp"
#include "common/cli.hpp"
#include "common/stats.hpp"
#include "common/table_printer.hpp"

namespace bsr {

Registry<FaultConfig>& fault_presets() {
  static Registry<FaultConfig> reg = [] {
    Registry<FaultConfig> r("fault preset");
    r.add("off", FaultConfig{});

    // The fig09 regime as a deterministic replay: every 0D-exposed iteration
    // takes exactly two element faults, every 1D-exposed one additionally a
    // column fault, rollback on. Seed-independent, so it is the reproducible
    // baseline that statistical campaign coverage is compared against.
    FaultConfig fig09;
    fig09.enabled = true;
    fig09.process = faultcamp::ProcessKind::Fixed;
    fig09.fixed_d0 = 2;
    fig09.fixed_d1 = 1;
    fig09.fixed_d2 = 0;
    fig09.correction_s = 2e-3;
    r.add("paper_fig09", fig09);

    // The statistical campaign default: seeded Poisson arrivals at the
    // device's own SDC-table rates (overclocked lanes fault more, safe
    // clocks not at all), corrections at 2 ms apiece, rollback on.
    FaultConfig poisson;
    poisson.enabled = true;
    poisson.process = faultcamp::ProcessKind::Poisson;
    poisson.rate_multiplier = 1.0;
    poisson.correction_s = 2e-3;
    r.add("poisson", poisson);

    // A flaky machine: amplified rates, bursty multi-fault arrivals, a wide
    // per-device hazard spread (some GPUs are lemons), and a background rate
    // that strikes even fault-free clocks — the regime where adaptive
    // protection can genuinely miss (it only guards states the SDC table
    // declares risky).
    FaultConfig hostile;
    hostile.enabled = true;
    hostile.process = faultcamp::ProcessKind::Poisson;
    hostile.rate_multiplier = 4.0;
    hostile.background_rate_per_s = 0.02;
    hostile.burst_mean = 3.0;
    hostile.hazard_sigma = 0.5;
    hostile.correction_s = 4e-3;
    r.add("hostile", hostile);

    r.alias("none", "off");
    r.alias("fig09", "paper_fig09");
    r.alias("on", "poisson");
    r.alias("bursty", "hostile");
    return r;
  }();
  return reg;
}

FaultConfig make_faults(const std::string& key) {
  return fault_presets().get(key);
}

Cli& add_fault_flags(Cli& cli, const std::string& def) {
  return cli.arg_string("faults", def,
                        "fault preset registry key (off, paper_fig09, "
                        "poisson, hostile)");
}

void apply_fault_flags_or_exit(const Cli& cli, RunConfig& cfg) {
  try {
    cfg.faults = make_faults(cli.get("faults"));
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    std::exit(2);
  }
}

FaultCampaign::FaultCampaign(RunConfig base, int trials)
    : base_(std::move(base)), trials_(trials) {}

FaultCampaign& FaultCampaign::over(Axis axis) {
  axes_.push_back(std::move(axis));
  return *this;
}

FaultCampaign& FaultCampaign::threads(int n) {
  threads_ = n;
  return *this;
}

CampaignResult FaultCampaign::run() {
  if (trials_ < 1) {
    throw std::invalid_argument("FaultCampaign: need trials >= 1 (got " +
                                std::to_string(trials_) + ")");
  }
  Sweep sweep(base_);
  for (const Axis& a : axes_) sweep.over(a);

  // The campaign axis is innermost: one faults-off baseline point plus one
  // point per trial. Trials vary ONLY faults.seed — the timing world (noise,
  // variability, sweep seed) stays fixed, so the baseline isolates exactly
  // the fault cost, and because a disabled block fingerprints as "flt=0"
  // every trial of a cell shares one cached baseline run.
  const std::uint64_t root =
      base_.faults.seed != 0 ? base_.faults.seed : base_.seed;
  Axis campaign{"campaign", {}};
  campaign.points.push_back(
      {"baseline", [](RunConfig& c) { c.faults = FaultConfig{}; }});
  for (int t = 0; t < trials_; ++t) {
    campaign.points.push_back(
        {std::to_string(t), [root, t](RunConfig& c) {
           c.faults.seed = derive_cell_seed(root, static_cast<std::uint64_t>(t));
         }});
  }
  sweep.over(campaign);
  sweep.threads(threads_);
  const SweepResult grid = sweep.run();

  CampaignResult result;
  result.axis_names.assign(grid.axis_names.begin(),
                           grid.axis_names.end() - 1);  // drop "campaign"
  result.trials = trials_;
  result.requested_runs = grid.requested_runs;
  result.unique_runs = grid.unique_runs;
  result.wall_seconds = grid.wall_seconds;

  const std::size_t stride = static_cast<std::size_t>(trials_) + 1;
  result.cells.reserve(grid.rows.size() / stride);
  // Per-cell trial-seconds buffer from the arena, allocated once and reused
  // for every cell (the stats helpers take spans, so no vector per cell).
  ArenaScope scope(Arena::scratch());
  double* trial_seconds = scope.alloc<double>(static_cast<std::size_t>(trials_));
  for (std::size_t at = 0; at < grid.rows.size(); at += stride) {
    CampaignCell cell;
    cell.baseline = grid.rows[at].report;
    cell.config = grid.rows[at + 1].config;
    cell.coords = grid.rows[at + 1].coords;
    cell.coords.erase("campaign");
    cell.trials.reserve(static_cast<std::size_t>(trials_));

    std::int64_t covered = 0;
    double recovery_sum = 0.0;
    for (std::size_t t = 1; t < stride; ++t) {
      const std::shared_ptr<const RunReport>& report = grid.rows[at + t].report;
      cell.trials.push_back(report);
      trial_seconds[t - 1] = report->seconds();
      recovery_sum += report->fault_recovery_s();
      for (const core::LaneFaults& lf : report->lane_faults) {
        cell.injected += lf.injected;
        cell.corrected += lf.corrected;
        cell.recovered += lf.recovered;
        cell.unrecovered += lf.unrecovered;
        cell.rollbacks += lf.rollbacks;
      }
      covered += report->faults_covered();
    }
    cell.coverage = cell.injected == 0
                        ? 1.0
                        : static_cast<double>(covered) /
                              static_cast<double>(cell.injected);
    const std::span<const double> seconds(trial_seconds,
                                          static_cast<std::size_t>(trials_));
    cell.overhead = stats::mean(seconds) / cell.baseline->seconds() - 1.0;
    // Trials without faults equal the baseline bit-for-bit; keep the mean's
    // last-ulp summation noise from rendering an exact zero as 2e-16.
    if (cell.overhead > -1e-12 && cell.overhead < 1e-12) cell.overhead = 0.0;
    cell.recovery_s = recovery_sum / static_cast<double>(trials_);
    cell.p50_s = stats::percentile(seconds, 0.50);
    cell.p95_s = stats::percentile(seconds, 0.95);
    cell.p99_s = stats::percentile(seconds, 0.99);
    result.cells.push_back(std::move(cell));
  }
  return result;
}

std::vector<std::string> campaign_columns(const CampaignResult& result) {
  std::vector<std::string> cols = result.axis_names;
  for (const char* c : {"trials", "coverage", "overhead", "injected",
                        "corrected", "recovered", "unrecovered", "rollbacks",
                        "recovery_s", "p50_s", "p95_s", "p99_s"}) {
    cols.emplace_back(c);
  }
  return cols;
}

void emit(const CampaignResult& result, ResultSink& sink) {
  sink.begin(campaign_columns(result));
  for (const CampaignCell& cell : result.cells) {
    std::vector<std::string> row;
    row.reserve(result.axis_names.size() + 12);
    for (const std::string& axis : result.axis_names) {
      row.push_back(cell.coords.at(axis));
    }
    row.push_back(std::to_string(result.trials));
    row.push_back(TablePrinter::num(cell.coverage));
    row.push_back(TablePrinter::num(cell.overhead));
    row.push_back(std::to_string(cell.injected));
    row.push_back(std::to_string(cell.corrected));
    row.push_back(std::to_string(cell.recovered));
    row.push_back(std::to_string(cell.unrecovered));
    row.push_back(std::to_string(cell.rollbacks));
    row.push_back(TablePrinter::num(cell.recovery_s));
    row.push_back(TablePrinter::num(cell.p50_s));
    row.push_back(TablePrinter::num(cell.p95_s));
    row.push_back(TablePrinter::num(cell.p99_s));
    sink.add_row(row);
  }
  sink.end();
}

}  // namespace bsr
