#include "bsr/result_sink.hpp"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ostream>
#include <stdexcept>

#include "bsr/registry.hpp"
#include "common/table_printer.hpp"

namespace bsr {

void require_result_sink_or_exit(const std::string& key) {
  try {
    (void)result_sinks().get(key);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    std::exit(2);
  }
}

namespace {

void check_width(std::size_t expected, std::size_t got) {
  if (expected != got) {
    throw std::invalid_argument("ResultSink: row has " + std::to_string(got) +
                                " values, header has " +
                                std::to_string(expected) + " columns");
  }
}

}  // namespace

// ---- TableSink --------------------------------------------------------------

void TableSink::begin(const std::vector<std::string>& columns) {
  columns_ = columns;
  rows_.clear();
}

void TableSink::add_row(const std::vector<std::string>& values) {
  check_width(columns_.size(), values.size());
  rows_.push_back(values);
}

void TableSink::end() {
  TablePrinter t(columns_);
  for (const auto& row : rows_) t.add_row(row);
  *out_ << t.to_string();
  out_->flush();
}

// ---- CsvSink ----------------------------------------------------------------

namespace {

std::string csv_field(const std::string& v) {
  if (v.find_first_of(",\"\n\r") == std::string::npos) return v;
  std::string quoted = "\"";
  for (const char c : v) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

void csv_line(std::ostream& out, const std::vector<std::string>& values) {
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out << ',';
    out << csv_field(values[i]);
  }
  out << '\n';
}

}  // namespace

void CsvSink::begin(const std::vector<std::string>& columns) {
  columns_ = columns.size();
  csv_line(*out_, columns);
}

void CsvSink::add_row(const std::vector<std::string>& values) {
  check_width(columns_, values.size());
  csv_line(*out_, values);
}

void CsvSink::end() { out_->flush(); }

// ---- JsonSink ---------------------------------------------------------------

namespace {

std::string json_string(const std::string& v) {
  std::string s = "\"";
  for (const char c : v) {
    switch (c) {
      case '"': s += "\\\""; break;
      case '\\': s += "\\\\"; break;
      case '\n': s += "\\n"; break;
      case '\r': s += "\\r"; break;
      case '\t': s += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          s += buf;
        } else {
          s += c;
        }
    }
  }
  s += '"';
  return s;
}

/// Strict RFC 8259 number grammar: -?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)?
/// (strtod alone is too permissive — it accepts ".5", "+5", "0x1f", "5.",
/// none of which are valid JSON tokens).
bool is_json_number(const std::string& v) {
  std::size_t i = 0;
  const std::size_t n = v.size();
  const auto digit = [&](std::size_t k) {
    return k < n && v[k] >= '0' && v[k] <= '9';
  };
  if (i < n && v[i] == '-') ++i;
  if (!digit(i)) return false;
  if (v[i] == '0') {
    ++i;
  } else {
    while (digit(i)) ++i;
  }
  if (i < n && v[i] == '.') {
    ++i;
    if (!digit(i)) return false;
    while (digit(i)) ++i;
  }
  if (i < n && (v[i] == 'e' || v[i] == 'E')) {
    ++i;
    if (i < n && (v[i] == '+' || v[i] == '-')) ++i;
    if (!digit(i)) return false;
    while (digit(i)) ++i;
  }
  return i == n;
}

std::string json_value(const std::string& v) {
  // Pass finite numbers through unquoted so consumers get real numbers.
  if (is_json_number(v)) {
    errno = 0;
    char* end = nullptr;
    const double d = std::strtod(v.c_str(), &end);
    if (end == v.c_str() + v.size() && errno == 0 && std::isfinite(d)) {
      return v;
    }
  }
  return json_string(v);
}

}  // namespace

void JsonSink::begin(const std::vector<std::string>& columns) {
  columns_ = columns;
  first_row_ = true;
  *out_ << "[";
}

void JsonSink::add_row(const std::vector<std::string>& values) {
  check_width(columns_.size(), values.size());
  *out_ << (first_row_ ? "\n" : ",\n") << "  {";
  first_row_ = false;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) *out_ << ", ";
    *out_ << json_string(columns_[i]) << ": " << json_value(values[i]);
  }
  *out_ << '}';
}

void JsonSink::end() {
  *out_ << "\n]\n";
  out_->flush();
}

}  // namespace bsr
