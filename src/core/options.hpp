// Public run options for the BSR decomposition framework.
#pragma once

#include <cstdint>
#include <string>

#include "faultcamp/process.hpp"
#include "predict/workload.hpp"
#include "var/models.hpp"

namespace bsr::obs {
class TraceRecorder;
}  // namespace bsr::obs

namespace bsr::core {

/// Which energy-management strategy drives per-iteration clock decisions.
enum class StrategyKind {
  Original,  ///< Fixed reference clocks, no slack reclamation (the baseline).
  R2H,       ///< Race-to-halt: run at max clock, idle the slack away.
  SR,        ///< Single-directional reclamation (GreenLA): down-clock the
             ///< non-critical device to absorb its slack.
  BSR,       ///< Bi-directional reclamation (paper Algorithm 2): split slack
             ///< between down-clocking the non-critical device and
             ///< overclocking the critical one, steered by
             ///< RunOptions::reclamation_ratio.
};

/// TimingOnly runs the full scheduling/strategy/prediction machinery against
/// the platform model (paper-scale inputs in milliseconds); Numeric
/// additionally executes the real factorization with real ABFT and real fault
/// injection (bounded input sizes).
enum class ExecutionMode { TimingOnly, Numeric };

/// How the ABFT protection level is chosen each iteration. Adaptive is the
/// paper's Algorithm 1; the Force* policies reproduce the always-on baselines
/// of Fig. 9.
enum class AbftPolicy {
  Adaptive,     ///< Algorithm 1: cheapest scheme meeting fc_desired per iter.
  ForceNone,    ///< No protection (fastest; SDCs propagate undetected).
  ForceSingle,  ///< Single-side checksums every iteration.
  ForceFull,    ///< Full checksums every iteration (strongest, costliest).
};

/// Options for one Decomposer::run. Defaults reproduce the paper's headline
/// configuration: LU, n = 30720, b = 512, BSR with r = 0 (maximum energy
/// saving), timing-only execution.
struct RunOptions {
  predict::Factorization factorization = predict::Factorization::LU;
  std::int64_t n = 30720;           ///< matrix order
  std::int64_t b = 512;             ///< block (panel) size; see tuned_block()
  StrategyKind strategy = StrategyKind::BSR;
  /// BSR's r in [0, 1]: the fraction of each iteration's slack left
  /// unreclaimed by overclocking. r = 0 maximizes energy saving; r = r*
  /// (see energy/pareto.hpp) is energy-neutral with maximum speedup.
  double reclamation_ratio = 0.0;
  double fc_desired = 0.999999;     ///< target ABFT fault coverage
  ExecutionMode mode = ExecutionMode::TimingOnly;
  std::uint64_t seed = 42;          ///< root seed for all stochastic parts
  /// Scales the platform's entire SDC-rate table for this run, so the
  /// coverage estimators, the BSR/ABFT-OC frequency policy, and the fault
  /// injector all observe one consistent (compressed-exposure) world —
  /// reduced-size numeric runs then see paper-scale fault counts. See
  /// DESIGN.md on exposure compression.
  double error_rate_multiplier = 1.0;
  bool noise_enabled = true;  ///< per-task execution-time jitter on/off
  int elem_bytes = 8;  ///< 8 = double precision, 4 = single
  /// Numeric mode: when ABFT *detects* an error pattern it cannot correct,
  /// roll the trailing update back and recompute it at a safe clock instead
  /// of letting the corruption propagate. The redo's time and energy are
  /// charged to the run (the "recovery with high overhead" the paper
  /// mentions as the alternative to sufficient checksum strength).
  bool recover_uncorrectable = false;
  /// Stochastic execution models (efficiency drift, transfer/DVFS jitter,
  /// thermal throttling); disabled by default. See bsr/variability.hpp.
  var::Spec variability;
  /// Seeded statistical fault processes + recovery-cost model (timing-only
  /// runs; numeric runs inject real faults instead); disabled by default.
  /// See bsr/faults.hpp.
  faultcamp::Spec faults;
  /// Optional span recorder carried through from RunConfig::trace (see
  /// bsr/observability.hpp); null = tracing off, bit-for-bit inert.
  obs::TraceRecorder* trace = nullptr;

  [[nodiscard]] predict::WorkloadModel workload() const {
    return predict::WorkloadModel{factorization, n, b, elem_bytes};
  }
};

/// Knobs beyond RunOptions that benches use to isolate single ingredients;
/// the defaults are the paper's full BSR configuration.
///
/// DEPRECATED: RunOptions + ExtendedOptions are kept as a compatibility shim
/// for one release. New code should use the merged `bsr::RunConfig`
/// (include/bsr/run_config.hpp); see docs/API_MIGRATION.md.
struct ExtendedOptions {
  AbftPolicy abft_policy = AbftPolicy::Adaptive;

  // BSR ablation switches (bench_ablation; all on = the paper's BSR).
  bool bsr_use_optimized_guardband = true;
  bool bsr_allow_overclocking = true;
  bool bsr_use_enhanced_predictor = true;
};

/// Performance-tuned block size for a given matrix order, mirroring the
/// paper's "block size tuned for performance": roughly n/60 blocks rounded to
/// the 64-grid and clamped to [64, 512] (512 at the paper's n = 30720).
std::int64_t tuned_block(std::int64_t n);

const char* to_string(StrategyKind s);
const char* to_string(ExecutionMode m);
const char* to_string(AbftPolicy p);

/// Parses "original" / "r2h" / "sr" / "bsr" (case-insensitive); throws on
/// anything else. Thin wrapper over bsr::strategies() — only registry entries
/// carrying a legacy StrategyKind tag (the four built-ins) resolve here.
StrategyKind strategy_from_string(const std::string& s);
/// Parses "adaptive" / "none" / "single" / "full" (case-insensitive) through
/// bsr::abft_policies(); throws on anything else.
AbftPolicy abft_policy_from_string(const std::string& s);
predict::Factorization factorization_from_string(const std::string& s);

}  // namespace bsr::core
