// Public run options for the BSR decomposition framework.
#pragma once

#include <cstdint>
#include <string>

#include "predict/workload.hpp"

namespace bsr::core {

enum class StrategyKind { Original, R2H, SR, BSR };

/// TimingOnly runs the full scheduling/strategy/prediction machinery against
/// the platform model (paper-scale inputs in milliseconds); Numeric
/// additionally executes the real factorization with real ABFT and real fault
/// injection (bounded input sizes).
enum class ExecutionMode { TimingOnly, Numeric };

struct RunOptions {
  predict::Factorization factorization = predict::Factorization::LU;
  std::int64_t n = 30720;
  std::int64_t b = 512;
  StrategyKind strategy = StrategyKind::BSR;
  double reclamation_ratio = 0.0;   ///< BSR's r
  double fc_desired = 0.999999;     ///< target ABFT fault coverage
  ExecutionMode mode = ExecutionMode::TimingOnly;
  std::uint64_t seed = 42;
  /// Scales the platform's entire SDC-rate table for this run, so the
  /// coverage estimators, the BSR/ABFT-OC frequency policy, and the fault
  /// injector all observe one consistent (compressed-exposure) world —
  /// reduced-size numeric runs then see paper-scale fault counts. See
  /// DESIGN.md on exposure compression.
  double error_rate_multiplier = 1.0;
  bool noise_enabled = true;
  int elem_bytes = 8;  ///< 8 = double precision, 4 = single
  /// Numeric mode: when ABFT *detects* an error pattern it cannot correct,
  /// roll the trailing update back and recompute it at a safe clock instead
  /// of letting the corruption propagate. The redo's time and energy are
  /// charged to the run (the "recovery with high overhead" the paper
  /// mentions as the alternative to sufficient checksum strength).
  bool recover_uncorrectable = false;

  [[nodiscard]] predict::WorkloadModel workload() const {
    return predict::WorkloadModel{factorization, n, b, elem_bytes};
  }
};

/// Performance-tuned block size for a given matrix order, mirroring the
/// paper's "block size tuned for performance": roughly n/60 blocks rounded to
/// the 64-grid and clamped to [64, 512] (512 at the paper's n = 30720).
std::int64_t tuned_block(std::int64_t n);

const char* to_string(StrategyKind s);
const char* to_string(ExecutionMode m);

/// Parses "original" / "r2h" / "sr" / "bsr" (case-insensitive); throws on
/// anything else.
StrategyKind strategy_from_string(const std::string& s);
predict::Factorization factorization_from_string(const std::string& s);

}  // namespace bsr::core
