#include "core/report.hpp"

#include <sstream>

namespace bsr::core {

// (Reserved for heavier report formatting; the human-readable summary lives
// here so report.hpp stays header-light.)
std::string summarize(const RunReport& r) {
  std::ostringstream ss;
  ss << (r.strategy_name.empty() ? to_string(r.options.strategy)
                                 : r.strategy_name.c_str())
     << " " << to_string(r.options.factorization)
     << " n=" << r.options.n << " b=" << r.options.b << ": " << r.seconds()
     << " s, " << r.total_energy_j() << " J (CPU " << r.cpu_energy_j()
     << " + GPU " << r.gpu_energy_j() << "), " << r.gflops() << " GFLOP/s";
  if (r.numeric_executed) {
    ss << ", residual=" << r.residual
       << (r.numeric_correct ? " [correct]" : " [CORRUPTED]");
  }
  return ss.str();
}

}  // namespace bsr::core
