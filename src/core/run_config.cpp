#include "bsr/run_config.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

#include "bsr/cluster.hpp"
#include "bsr/registry.hpp"
#include "common/ascii.hpp"
#include "core/decomposer.hpp"
#include "faultcamp/process.hpp"
#include "var/models.hpp"

namespace bsr {

std::int64_t RunConfig::block() const {
  if (b > 0) return b;
  return std::min(core::tuned_block(n), n);
}

void RunConfig::validate() const {
  const auto fail = [](const std::string& what) {
    throw std::invalid_argument("RunConfig: " + what);
  };
  if (n <= 0) fail("need n > 0 (got n=" + std::to_string(n) + ")");
  if (b < 0) fail("need b >= 0 (0 = auto-tune; got b=" + std::to_string(b) + ")");
  if (b > n) {
    fail("need b <= n (got b=" + std::to_string(b) +
         ", n=" + std::to_string(n) + ")");
  }
  if (!(reclamation_ratio >= 0.0 && reclamation_ratio <= 1.0)) {
    fail("reclamation_ratio must be in [0, 1] (got " +
         std::to_string(reclamation_ratio) + ")");
  }
  if (!(fc_desired > 0.0 && fc_desired < 1.0)) {
    fail("fc_desired must be in (0, 1) (got " + std::to_string(fc_desired) +
         ")");
  }
  if (elem_bytes != 4 && elem_bytes != 8) {
    fail("elem_bytes must be 4 or 8 (got " + std::to_string(elem_bytes) + ")");
  }
  if (!(error_rate_multiplier >= 0.0)) {
    fail("error_rate_multiplier must be >= 0 (got " +
         std::to_string(error_rate_multiplier) + ")");
  }
  if (devices < 0 || devices > 4096) {
    fail("devices must be in [0, 4096] (got " + std::to_string(devices) + ")");
  }
  if (devices >= 1 && mode == ExecutionMode::Numeric) {
    fail("cluster runs (devices >= 1) are timing-only; numeric execution is "
         "single-node");
  }
  // The variability block validates itself; its message gets our prefix.
  try {
    var::validate(variability);
  } catch (const std::invalid_argument& e) {
    fail(e.what());
  }
  // So does the faults block — which is additionally timing-only: numeric
  // runs inject *real* faults (fault/injector.hpp), and running both models
  // at once would double-count every error.
  try {
    faultcamp::validate(faults);
  } catch (const std::invalid_argument& e) {
    fail(e.what());
  }
  if (faults.enabled && mode == ExecutionMode::Numeric) {
    fail(
        "faults: the statistical fault block is timing-only; numeric runs "
        "perform real injection (disable faults or use "
        "ExecutionMode::TimingOnly)");
  }
  // Registry keys: get() throws listing the known keys on a miss.
  try {
    (void)strategies().get(strategy);
    (void)abft_policies().get(abft_policy);
    (void)platforms().get(platform);
    if (devices >= 1) {
      (void)cluster_profiles().get(cluster);
      (void)collectives().get(collective);
    }
  } catch (const std::invalid_argument& e) {
    fail(e.what());
  }
  if (devices >= 1 && !strategies().get(strategy).kind) {
    fail("strategy \"" + strategy +
         "\" is registry-only (no built-in generalization); the cluster "
         "engine supports original/r2h/sr/bsr");
  }
  if (devices >= 1) {
    // Capacity is checked here — before any sweep cell runs — so an
    // oversized --devices / weak_devices_axis count fails naming the profile
    // and its rack size, not as a generic error deep in the sweep.
    const ClusterProfileInfo info = cluster_profile_info(cluster);
    try {
      cluster::check_profile_capacity(cluster_profiles().canonical(cluster),
                                      devices, info.capacity);
    } catch (const std::invalid_argument& e) {
      fail(e.what());
    }
    if ((grid_p > 0) != (grid_q > 0)) {
      fail("set both grid_p and grid_q (or neither for the auto layout); got "
           "grid_p=" + std::to_string(grid_p) +
           ", grid_q=" + std::to_string(grid_q));
    }
    if (grid_p < 0 || grid_q < 0) {
      fail("process grid must be positive (got grid_p=" +
           std::to_string(grid_p) + ", grid_q=" + std::to_string(grid_q) +
           ")");
    }
    if (grid_p > 0 && grid_p * grid_q != devices) {
      fail("process grid " + std::to_string(grid_p) + "x" +
           std::to_string(grid_q) + " must cover exactly devices=" +
           std::to_string(devices) + " (got " +
           std::to_string(grid_p * grid_q) + ")");
    }
  }
}

core::RunOptions RunConfig::options() const {
  core::RunOptions o;
  o.factorization = factorization;
  o.n = n;
  o.b = block();
  o.strategy = core::strategy_from_string(strategy);
  o.reclamation_ratio = reclamation_ratio;
  o.fc_desired = fc_desired;
  o.mode = mode;
  o.seed = seed;
  o.error_rate_multiplier = error_rate_multiplier;
  o.noise_enabled = noise_enabled;
  o.elem_bytes = elem_bytes;
  o.recover_uncorrectable = recover_uncorrectable;
  o.variability = variability;
  o.faults = faults;
  o.trace = trace;
  return o;
}

core::ExtendedOptions RunConfig::extended() const {
  core::ExtendedOptions e;
  e.abft_policy = abft_policies().get(abft_policy);
  e.bsr_use_optimized_guardband = bsr_use_optimized_guardband;
  e.bsr_allow_overclocking = bsr_allow_overclocking;
  e.bsr_use_enhanced_predictor = bsr_use_enhanced_predictor;
  return e;
}

std::string RunConfig::fingerprint() const {
  const auto num = [](double v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return std::string(buf);
  };
  std::string fp;
  fp.reserve(256);
  fp += "fact=";
  fp += predict::to_string(factorization);
  fp += ";n=" + std::to_string(n);
  fp += ";b=" + std::to_string(block());
  fp += ";elem=" + std::to_string(elem_bytes);
  // Keys are canonicalized so "BSR", "bsr", and alias spellings ("org" vs
  // "original") fingerprint — and therefore cache — identically.
  const std::string strat = strategies().canonical(strategy);
  fp += ";strategy=" + strat;
  // The built-in non-BSR strategies provably ignore the BSR-only knobs, so
  // those are normalized out: a (strategy x r) grid runs Original once, not
  // once per r. Registry-registered strategies keep the full fingerprint —
  // their factories receive the whole config and may read any field.
  const bool bsr_knobs_apply =
      !(strat == "original" || strat == "r2h" || strat == "sr");
  // The cluster engine consults fc_desired for *every* strategy (per-device
  // ABFT-OC runs under Original/R2H/SR too), so fc stays significant on
  // cluster runs even when the other BSR knobs normalize out.
  const bool fc_applies = bsr_knobs_apply || devices >= 1;
  const RunConfig defaults;
  fp += ";r=" + num(bsr_knobs_apply ? reclamation_ratio
                                    : defaults.reclamation_ratio);
  fp += ";fc=" + num(fc_applies ? fc_desired : defaults.fc_desired);
  fp += ";gb=" + std::to_string(bsr_knobs_apply ? bsr_use_optimized_guardband
                                                : defaults.bsr_use_optimized_guardband);
  fp += ";oc=" + std::to_string(bsr_knobs_apply ? bsr_allow_overclocking
                                                : defaults.bsr_allow_overclocking);
  fp += ";pred=" + std::to_string(bsr_knobs_apply ? bsr_use_enhanced_predictor
                                                  : defaults.bsr_use_enhanced_predictor);
  fp += ";abft=" + abft_policies().canonical(abft_policy);
  // recover_uncorrectable only influences numeric execution; normalizing it
  // out in timing-only runs lets e.g. fig09's "Single" and "Single+recovery"
  // overhead rows share one cached timing run.
  const bool recover =
      mode == ExecutionMode::Numeric && recover_uncorrectable;
  fp += ";recover=" + std::to_string(recover);
  fp += ";mode=";
  fp += core::to_string(mode);
  fp += ";seed=" + std::to_string(seed);
  fp += ";erm=" + num(error_rate_multiplier);
  fp += ";noise=" + std::to_string(noise_enabled);
  // Exactly one of the two platform keys applies per run, so the other is
  // normalized out (mirrors the BSR-knob normalization above): cluster runs
  // ignore the single-node `platform`, single-node runs ignore `cluster`.
  fp += ";platform=" +
        (devices >= 1 ? std::string("-") : platforms().canonical(platform));
  fp += ";devices=" + std::to_string(devices);
  fp += ";cluster=" + (devices >= 1 ? cluster_profiles().canonical(cluster)
                                    : std::string("-"));
  // Grid / collective / rebalance only drive cluster runs, and are recorded
  // *resolved* (never the literal "auto"), so an explicit layout and the
  // auto choice that resolves to it share one cache entry, while different
  // layouts on the same profile can never alias.
  if (devices >= 1) {
    const ResolvedClusterLayout lay = resolved_cluster_layout(*this);
    fp += ";grid=" + std::to_string(lay.grid_p) + "x" +
          std::to_string(lay.grid_q);
    fp += ";coll=";
    switch (lay.schedule) {
      case cluster::BroadcastSchedule::Relay: fp += "relay"; break;
      case cluster::BroadcastSchedule::Ring: fp += "ring"; break;
      case cluster::BroadcastSchedule::Tree: fp += "tree"; break;
    }
    fp += ";rebal=" + std::to_string(rebalance);
  } else {
    fp += ";grid=-;coll=-;rebal=0";
  }
  // Disabled variability collapses to "var=0" whatever the other fields say,
  // so toggling a block off restores the deterministic-world cache key.
  fp += ';' + var::fingerprint_fragment(variability);
  // Same contract for the faults block ("flt=0" when disabled): a campaign
  // trial's faults-off baseline shares the deterministic world's cache key.
  fp += ';' + faultcamp::fingerprint_fragment(faults);
  return fp;
}

RunConfig from_legacy(const core::RunOptions& opts,
                      const core::ExtendedOptions& ext) {
  RunConfig cfg;
  cfg.factorization = opts.factorization;
  cfg.n = opts.n;
  cfg.b = opts.b;
  cfg.elem_bytes = opts.elem_bytes;
  cfg.strategy = ascii_lower(core::to_string(opts.strategy));
  cfg.reclamation_ratio = opts.reclamation_ratio;
  cfg.fc_desired = opts.fc_desired;
  cfg.bsr_use_optimized_guardband = ext.bsr_use_optimized_guardband;
  cfg.bsr_allow_overclocking = ext.bsr_allow_overclocking;
  cfg.bsr_use_enhanced_predictor = ext.bsr_use_enhanced_predictor;
  cfg.abft_policy = [&] {
    switch (ext.abft_policy) {
      case AbftPolicy::Adaptive: return "adaptive";
      case AbftPolicy::ForceNone: return "none";
      case AbftPolicy::ForceSingle: return "single";
      case AbftPolicy::ForceFull: return "full";
    }
    return "adaptive";
  }();
  cfg.recover_uncorrectable = opts.recover_uncorrectable;
  cfg.mode = opts.mode;
  cfg.seed = opts.seed;
  cfg.error_rate_multiplier = opts.error_rate_multiplier;
  cfg.noise_enabled = opts.noise_enabled;
  cfg.variability = opts.variability;
  cfg.faults = opts.faults;
  cfg.trace = opts.trace;
  return cfg;
}

core::RunReport run(const RunConfig& cfg) {
  cfg.validate();
  const core::Decomposer dec(make_platform(cfg.platform));
  return dec.run(cfg);
}

std::uint64_t derive_cell_seed(std::uint64_t root, std::uint64_t index) {
  // splitmix64 over root + (index + 1) * golden gamma: cheap, well mixed, and
  // cells of one grid never collide with the root seed itself.
  std::uint64_t z = root + (index + 1) * 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace bsr
