#include "energy/bsr_strategy.hpp"

#include <algorithm>
#include <cmath>

namespace bsr::energy {

using predict::OpKind;

sched::IterationDecision BsrStrategy::decide(int k,
                                             const sched::HybridPipeline& pipe) {
  const hw::DeviceModel& cpu = pipe.platform().cpu;
  const hw::DeviceModel& gpu = pipe.platform().gpu;
  const auto& wl = pipe.workload();
  const std::int64_t blocks = (wl.n / wl.b) * (wl.n / wl.b);
  const bool oc = config_.allow_overclocking;

  sched::IterationDecision d;
  // Algorithm 2 line 2: the optimized guardband is applied for the whole run.
  const hw::Guardband gb = config_.use_optimized_guardband
                               ? hw::Guardband::Optimized
                               : hw::Guardband::Default;
  d.cpu_guardband = gb;
  d.gpu_guardband = gb;

  if (k == 0) {
    d.cpu_freq = cpu.freq.base_mhz;
    d.gpu_freq = gpu.freq.base_mhz;
    d.adjust_cpu = true;
    d.adjust_gpu = true;
    return d;
  }

  // Lines 3-4: enhanced algorithmic prediction and slack.
  const predict::SlackPredictor& pred = predictor();
  const double t_cpu = pred.predict(OpKind::PD, k);
  const double t_gpu = pred.predict(OpKind::TMU, k);
  const double t_xfer = pred.predict(OpKind::Transfer, k);
  const double slack = t_gpu - t_cpu - t_xfer;
  const double r = config_.reclamation_ratio;
  const double l_cpu = cpu.dvfs_latency.seconds();
  const double l_gpu = gpu.dvfs_latency.seconds();

  // With r > 0 the critical-path processor additionally compensates for the
  // DVFS transition latency (paper lines 6/9): late in the decomposition the
  // tasks shrink toward the latency scale, which is what pushes the desired
  // clock up the overclocking staircase (Fig. 9's 1700 -> 1900 -> 2200 MHz
  // progression). At r = 0 nothing is reclaimed by speeding up, so the
  // critical side stays at base and BSR saves purely by slowing the idle side
  // under the optimized guardband.
  double t_cpu_desired = 0.0;
  double t_gpu_desired = 0.0;
  if (slack > 0.0) {
    const double reclaim = r > 0.0 ? slack * r + l_gpu : 0.0;
    t_gpu_desired = t_gpu - reclaim;
    t_cpu_desired = std::max(t_cpu, t_gpu_desired - l_cpu - t_xfer);
  } else {
    const double reclaim = r > 0.0 ? (-slack) * r + l_cpu : 0.0;
    t_cpu_desired = t_cpu - reclaim;
    t_gpu_desired = std::max(t_gpu, t_cpu_desired + t_xfer - l_gpu);
  }

  // Lines 12-15: frequencies, rounded up to the grid, clamped to the
  // reachable range (overclocked states only when the ablation allows them —
  // this is where speeding the critical path past base enters).
  hw::Mhz f_gpu = freq_for_time(t_gpu, t_gpu_desired, gpu, oc);
  hw::Mhz f_cpu = freq_for_time(t_cpu, t_cpu_desired, cpu, oc);
  if (!oc) {
    f_gpu = std::min(f_gpu, gpu.freq.base_mhz);
    f_cpu = std::min(f_cpu, cpu.freq.base_mhz);
  }

  // Line 23: adaptive ABFT may lower the GPU clock to a coverable frequency
  // and tells us which checksum scheme to run.
  const abft::AbftDecision ad =
      abft::abft_oc(config_.fc_desired, f_gpu, gpu, t_gpu, blocks);
  f_gpu = oc ? ad.freq : std::min(ad.freq, gpu.freq.base_mhz);

  // Lines 16-22: projection guard — skip the transition when the projected
  // time would push past the iteration's critical path.
  const double t_max = std::max(t_gpu, t_cpu + t_xfer);
  const double eps = 1e-3 * t_max;
  const double t_gpu_proj = time_at_freq(t_gpu, f_gpu, gpu);
  const double t_cpu_proj = time_at_freq(t_cpu, f_cpu, cpu);
  const bool adjust_gpu = t_gpu_proj <= t_max + eps;
  const bool adjust_cpu = t_cpu_proj + t_xfer <= t_max + eps;

  d.cpu_freq = f_cpu;
  d.gpu_freq = f_gpu;
  d.adjust_cpu = adjust_cpu && f_cpu != pipe.cpu_freq();
  d.adjust_gpu = adjust_gpu && f_gpu != pipe.gpu_freq();

  // The protection level must match the clock that will actually run: when
  // the transition is skipped the previous (possibly overclocked) frequency
  // persists, so re-evaluate ABFT-OC for it.
  const hw::Mhz running = d.adjust_gpu ? f_gpu : pipe.gpu_freq();
  if (running == f_gpu) {
    d.abft_mode = ad.mode;
  } else {
    d.abft_mode =
        abft::abft_oc(config_.fc_desired, running, gpu, t_gpu, blocks).mode;
  }
  return d;
}

void BsrStrategy::observe(int k, const sched::IterationOutcome& o) {
  for (predict::SlackPredictor* p :
       {static_cast<predict::SlackPredictor*>(&enhanced_),
        static_cast<predict::SlackPredictor*>(&first_)}) {
    p->record(OpKind::PD, k, o.pd_base_s);
    p->record(OpKind::TMU, k, o.pu_tmu_base_s);
    p->record(OpKind::Transfer, k, o.transfer_s);
  }
}

}  // namespace bsr::energy
