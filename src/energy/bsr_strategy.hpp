// Bi-directional Slack Reclamation — paper Algorithm 2, the core contribution.
//
// Per iteration: predict task times with the enhanced predictor, split the
// predicted slack with the reclamation ratio r — speed the critical-path
// processor up (overclocking under the optimized guardband, ABFT-protected
// when the clock exceeds the fault-free limit) and slow the non-critical-path
// processor down (DVFS) — guard against projected performance loss, then ask
// Algorithm 1 (ABFT-OC) for the protection level matching the final GPU clock.
//
// The three ingredient switches exist for the ablation study
// (bench_ablation): disabling any one of them degrades BSR toward the prior
// art — no guardband ≈ bi-directional DVFS only; no overclocking ≈ SR with a
// better predictor; first-iteration predictor ≈ SR's prediction quality.
#pragma once

#include "abft/adaptive.hpp"
#include "abft/coverage.hpp"
#include "energy/strategy.hpp"
#include "predict/slack_predictor.hpp"

namespace bsr::energy {

struct BsrConfig {
  double reclamation_ratio = 0.0;  ///< r: 0 = max energy saving, higher = faster
  double fc_desired = abft::kFullCoverageThreshold;

  // Ablation switches (all on = the paper's BSR).
  bool use_optimized_guardband = true;
  bool allow_overclocking = true;
  bool use_enhanced_predictor = true;
};

class BsrStrategy final : public Strategy {
 public:
  BsrStrategy(const predict::WorkloadModel& wl, BsrConfig config)
      : enhanced_(wl), first_(wl), config_(config) {}

  [[nodiscard]] const char* name() const override { return "BSR"; }
  sched::IterationDecision decide(int k,
                                  const sched::HybridPipeline& pipe) override;
  void observe(int k, const sched::IterationOutcome& o) override;

  [[nodiscard]] const predict::SlackPredictor& predictor() const {
    return config_.use_enhanced_predictor
               ? static_cast<const predict::SlackPredictor&>(enhanced_)
               : static_cast<const predict::SlackPredictor&>(first_);
  }
  [[nodiscard]] const BsrConfig& config() const { return config_; }

 private:
  predict::EnhancedPredictor enhanced_;
  predict::FirstIterationPredictor first_;
  BsrConfig config_;
};

}  // namespace bsr::energy
