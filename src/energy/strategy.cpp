#include "energy/strategy.hpp"

#include <cmath>

namespace bsr::energy {

sched::RunTrace run_under_strategy(sched::HybridPipeline& pipe,
                                   Strategy& strategy) {
  sched::RunTrace trace;
  const int iters = pipe.num_iterations();
  for (int k = 0; k < iters; ++k) {
    const sched::IterationDecision d = strategy.decide(k, pipe);
    const sched::IterationOutcome o = pipe.run_iteration(k, d);
    strategy.observe(k, o);
    trace.add(o);
  }
  return trace;
}

double time_at_freq(double t_base_s, hw::Mhz f, const hw::DeviceModel& dev) {
  const double ratio =
      static_cast<double>(dev.freq.base_mhz) / static_cast<double>(f);
  return t_base_s * std::pow(ratio, dev.perf.freq_exponent);
}

hw::Mhz freq_for_time(double t_base_s, double t_desired_s,
                      const hw::DeviceModel& dev, bool optimized_guardband) {
  // Nothing to run -> any clock satisfies the deadline; stay at base (this
  // matters for the final iteration, whose trailing update is empty).
  if (t_base_s <= 0.0) return dev.freq.base_mhz;
  if (t_desired_s <= 0.0) {
    return dev.freq.clamp(dev.freq.max_oc_mhz, optimized_guardband);
  }
  // time ∝ (f_base/f)^eta  =>  f = f_base * (t_base/t_desired)^(1/eta)
  const double ratio =
      std::pow(t_base_s / t_desired_s, 1.0 / dev.perf.freq_exponent);
  return dev.freq.round_up_from_ratio(ratio, optimized_guardband);
}

}  // namespace bsr::energy
