#include "energy/sr.hpp"

#include <algorithm>

namespace bsr::energy {

using predict::OpKind;

sched::IterationDecision SlackReclamationStrategy::decide(
    int k, const sched::HybridPipeline& pipe) {
  const hw::DeviceModel& cpu = pipe.platform().cpu;
  const hw::DeviceModel& gpu = pipe.platform().gpu;

  sched::IterationDecision d;
  if (k == 0) {
    // Profile iteration: run at base clocks.
    d.cpu_freq = cpu.freq.base_mhz;
    d.gpu_freq = gpu.freq.base_mhz;
    d.adjust_cpu = true;
    d.adjust_gpu = true;
    return d;
  }

  const double t_cpu = predictor_.predict(OpKind::PD, k);
  const double t_gpu = predictor_.predict(OpKind::TMU, k);
  const double t_xfer = predictor_.predict(OpKind::Transfer, k);
  const double slack = t_gpu - t_cpu - t_xfer;

  hw::Mhz f_cpu = cpu.freq.base_mhz;
  hw::Mhz f_gpu = gpu.freq.base_mhz;
  if (slack > 0.0) {
    // CPU is off the critical path: stretch PD into the slack.
    const double t_desired =
        t_gpu - t_xfer - cpu.dvfs_latency.seconds();
    f_cpu = std::min(freq_for_time(t_cpu, t_desired, cpu, false),
                     cpu.freq.base_mhz);
  } else if (slack < 0.0) {
    // GPU is off the critical path: stretch PU+TMU.
    const double t_desired =
        t_cpu + t_xfer - gpu.dvfs_latency.seconds();
    f_gpu = std::min(freq_for_time(t_gpu, t_desired, gpu, false),
                     gpu.freq.base_mhz);
  }

  // Projection guard (same safeguard BSR formalizes in Algorithm 2 l.18-22):
  // skip the adjustment when the projected stretched task would exceed the
  // iteration's critical-path length.
  const double t_max = std::max(t_gpu, t_cpu + t_xfer);
  const double eps = 1e-3 * t_max;
  const bool cpu_ok = time_at_freq(t_cpu, f_cpu, cpu) + t_xfer <= t_max + eps;
  const bool gpu_ok = time_at_freq(t_gpu, f_gpu, gpu) <= t_max + eps;

  d.cpu_freq = f_cpu;
  d.gpu_freq = f_gpu;
  d.adjust_cpu = cpu_ok && f_cpu != pipe.cpu_freq();
  d.adjust_gpu = gpu_ok && f_gpu != pipe.gpu_freq();
  return d;
}

void SlackReclamationStrategy::observe(int k, const sched::IterationOutcome& o) {
  predictor_.record(OpKind::PD, k, o.pd_base_s);
  predictor_.record(OpKind::TMU, k, o.pu_tmu_base_s);
  predictor_.record(OpKind::Transfer, k, o.transfer_s);
}

}  // namespace bsr::energy
