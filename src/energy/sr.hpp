// Single-directional Slack Reclamation (GreenLA [7]) — the prior
// state-of-the-art baseline the paper compares against.
//
// Profiles the first iteration, predicts each later iteration's task times via
// the Table-2 complexity ratios (FirstIterationPredictor), and slows the
// *non-critical-path* processor via DVFS so its task stretches into the slack.
// Stays inside the default guardband: no undervolting, no overclocking, no
// ABFT. Never raises a clock above base.
#pragma once

#include <memory>

#include "energy/strategy.hpp"
#include "predict/slack_predictor.hpp"

namespace bsr::energy {

class SlackReclamationStrategy final : public Strategy {
 public:
  explicit SlackReclamationStrategy(const predict::WorkloadModel& wl)
      : predictor_(wl) {}

  [[nodiscard]] const char* name() const override { return "SR"; }
  sched::IterationDecision decide(int k,
                                  const sched::HybridPipeline& pipe) override;
  void observe(int k, const sched::IterationOutcome& o) override;

  [[nodiscard]] const predict::FirstIterationPredictor& predictor() const {
    return predictor_;
  }

 private:
  predict::FirstIterationPredictor predictor_;
};

}  // namespace bsr::energy
