#include "energy/baselines.hpp"

namespace bsr::energy {

sched::IterationDecision OriginalStrategy::decide(
    int k, const sched::HybridPipeline& pipe) {
  sched::IterationDecision d;
  d.cpu_freq = pipe.platform().cpu.freq.base_mhz;
  d.gpu_freq = pipe.platform().gpu.freq.base_mhz;
  // Clocks are already at base after construction; only "adjust" once so the
  // DVFS controllers report zero transitions afterwards.
  d.adjust_cpu = (k == 0);
  d.adjust_gpu = (k == 0);
  return d;
}

}  // namespace bsr::energy
