// Baseline strategies: Original (fixed clocks) and Race-to-Halt.
#pragma once

#include "energy/strategy.hpp"

namespace bsr::energy {

/// The MAGMA-style original: both clocks pinned at their defaults (autoboost
/// disabled), default guardband, no ABFT. Idle time burns idle power at the
/// default clock.
class OriginalStrategy final : public Strategy {
 public:
  [[nodiscard]] const char* name() const override { return "Original"; }
  sched::IterationDecision decide(int k,
                                  const sched::HybridPipeline& pipe) override;
};

/// Race-to-Halt: autoboost races busy work at the highest default-guardband
/// clock and the hardware drops to the floor state the moment the lane goes
/// idle (paper Fig. 3(a)). Transitions are hardware-managed, i.e. free.
class RaceToHaltStrategy final : public Strategy {
 public:
  [[nodiscard]] const char* name() const override { return "R2H"; }
  sched::IterationDecision decide(int k,
                                  const sched::HybridPipeline& pipe) override;
};

}  // namespace bsr::energy
