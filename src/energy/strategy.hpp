// Strategy interface + shared frequency/time arithmetic.
//
// A strategy is consulted at the top of every pipeline iteration (exactly
// where paper Algorithm 2 runs) and returns the DVFS/guardband/ABFT decision;
// after the iteration it observes the measured outcome to feed its predictor.
#pragma once

#include <memory>

#include "sched/pipeline.hpp"

namespace bsr::energy {

class Strategy {
 public:
  virtual ~Strategy() = default;
  [[nodiscard]] virtual const char* name() const = 0;
  virtual sched::IterationDecision decide(int k,
                                          const sched::HybridPipeline& pipe) = 0;
  virtual void observe(int k, const sched::IterationOutcome& outcome) {
    (void)k;
    (void)outcome;
  }
};

/// Runs the whole factorization under `strategy` and returns the trace.
sched::RunTrace run_under_strategy(sched::HybridPipeline& pipe, Strategy& strategy);

// ---- shared helpers ---------------------------------------------------------

/// Projected duration at frequency f of a task measured at base clock,
/// using the device's perf-scaling exponent (time ∝ (f_base/f)^eta).
double time_at_freq(double t_base_s, hw::Mhz f, const hw::DeviceModel& dev);

/// Smallest on-grid frequency whose projected time meets t_desired (i.e. the
/// paper's Roundup(F_BASE * T'/T_desired, 100 MHz), generalized to the
/// device's scaling exponent), clamped to the reachable range.
hw::Mhz freq_for_time(double t_base_s, double t_desired_s,
                      const hw::DeviceModel& dev, bool optimized_guardband);

}  // namespace bsr::energy
