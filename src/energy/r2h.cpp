#include "energy/baselines.hpp"

namespace bsr::energy {

sched::IterationDecision RaceToHaltStrategy::decide(
    int k, const sched::HybridPipeline& pipe) {
  sched::IterationDecision d;
  // Race at the default clocks (autoboost keeps the busy lanes at their rated
  // speed; boosting the CPU beyond base burns f^2.4 dynamic power for little
  // wall-clock gain on the panel, which is why the paper's R2H is MAGMA with
  // autoboost rather than a fixed manual overclock).
  d.cpu_freq = pipe.platform().cpu.freq.base_mhz;
  d.gpu_freq = pipe.platform().gpu.freq.base_mhz;
  d.adjust_cpu = (k == 0);
  d.adjust_gpu = (k == 0);
  // Halt: hardware power management parks the idle lane at the floor clock.
  d.halt_idle_cpu = true;
  d.halt_idle_gpu = true;
  return d;
}

}  // namespace bsr::energy
