// Analytical energy-delta model and the energy-neutral reclamation ratio r*
// — paper §3.2.3.
//
// For an iteration whose slack sits on the CPU side, BSR slows the CPU into
// the remaining (1-r) fraction of the slack and speeds the GPU by the r
// fraction. The resulting per-iteration energy deltas (positive = saving,
// relative to the Original design) are the closed forms printed in the paper;
// solving dE_CPU(r) + dE_GPU(r) = 0 yields the largest r that still costs no
// extra energy — the knee of the Pareto front (≈0.26-0.31 in the paper).
#pragma once

#include "hw/platform.hpp"
#include "sched/timeline.hpp"

namespace bsr::energy {

struct EnergyDeltaParams {
  double t_cpu_s = 0.0;   ///< original CPU task time in the iteration
  double t_gpu_s = 0.0;   ///< original GPU task time
  double slack_s = 0.0;   ///< positive slack (CPU-side)
  double alpha_cpu = 1.0; ///< guardband power-reduction factors
  double alpha_gpu = 1.0;
  double d_cpu = 0.7;     ///< dynamic power fractions
  double d_gpu = 0.7;
  double p_cpu_total_w = 0.0;  ///< total power at default guardband/base clock
  double p_gpu_total_w = 0.0;
  double exponent = 2.4;  ///< dynamic-power exponent (energy scales with ^1.4)
};

/// dE_CPU(r): slowing the CPU into (1-r) of the slack.
double delta_e_cpu(const EnergyDeltaParams& p, double r);

/// dE_GPU(r): speeding the GPU by r of the slack.
double delta_e_gpu(const EnergyDeltaParams& p, double r);

/// Largest r in [0, 1] with dE_CPU + dE_GPU >= 0 (bisection; the delta is
/// monotonically decreasing in r). Returns 0 when even r=0 loses energy.
double solve_energy_neutral_r(const EnergyDeltaParams& p);

/// Builds per-iteration params from an Original-strategy trace and averages
/// the per-iteration r* over CPU-side-slack iterations (the paper reports
/// 0.28 / 0.26 / 0.31 for Cholesky / LU / QR at n=30720).
double average_energy_neutral_r(const sched::RunTrace& original_trace,
                                const hw::PlatformProfile& platform);

}  // namespace bsr::energy
