#include "energy/pareto.hpp"

#include <algorithm>
#include <cmath>

namespace bsr::energy {

namespace {
// Dynamic energy scales as time * power ∝ t * f^2.4 with f ∝ 1/t, i.e. t^-1.4.
double time_pow(double t_old, double t_new, double exponent) {
  return std::pow(t_old / t_new, exponent - 1.0);
}
}  // namespace

double delta_e_cpu(const EnergyDeltaParams& p, double r) {
  const double t_new = p.t_cpu_s + p.slack_s * (1.0 - r);
  if (t_new <= 0.0 || p.t_cpu_s <= 0.0) return 0.0;
  const double dyn =
      (1.0 - p.alpha_cpu * time_pow(p.t_cpu_s, t_new, p.exponent)) * p.d_cpu *
      p.p_cpu_total_w * p.t_cpu_s;
  const double stat = (p.t_cpu_s - p.alpha_cpu * t_new) * (1.0 - p.d_cpu) *
                      p.p_cpu_total_w;
  return dyn + stat;
}

double delta_e_gpu(const EnergyDeltaParams& p, double r) {
  const double t_new = p.t_gpu_s - p.slack_s * r;
  if (t_new <= 0.0 || p.t_gpu_s <= 0.0) return 0.0;
  const double dyn =
      (1.0 - p.alpha_gpu * time_pow(p.t_gpu_s, t_new, p.exponent)) * p.d_gpu *
      p.p_gpu_total_w * p.t_gpu_s;
  const double stat = (p.t_gpu_s - p.alpha_gpu * t_new) * (1.0 - p.d_gpu) *
                      p.p_gpu_total_w;
  return dyn + stat;
}

double solve_energy_neutral_r(const EnergyDeltaParams& p) {
  auto total = [&](double r) { return delta_e_cpu(p, r) + delta_e_gpu(p, r); };
  if (total(0.0) <= 0.0) return 0.0;
  if (total(1.0) >= 0.0) return 1.0;
  double lo = 0.0;
  double hi = 1.0;
  for (int it = 0; it < 60; ++it) {
    const double mid = 0.5 * (lo + hi);
    if (total(mid) >= 0.0) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

double average_energy_neutral_r(const sched::RunTrace& original_trace,
                                const hw::PlatformProfile& platform) {
  const hw::DeviceModel& cpu = platform.cpu;
  const hw::DeviceModel& gpu = platform.gpu;
  double sum = 0.0;
  int count = 0;
  for (const auto& o : original_trace.iterations) {
    const double slack = o.slack.seconds();
    if (slack <= 0.0) continue;  // GPU-side slack handled symmetrically by BSR
    EnergyDeltaParams p;
    p.t_cpu_s = o.pd.seconds();
    p.t_gpu_s = o.pu_tmu.seconds();
    p.slack_s = slack;
    p.alpha_cpu = cpu.guardband.alpha(cpu.freq.base_mhz,
                                      hw::Guardband::Optimized, cpu.freq);
    p.alpha_gpu = gpu.guardband.alpha(gpu.freq.base_mhz,
                                      hw::Guardband::Optimized, gpu.freq);
    p.d_cpu = cpu.power.dynamic_fraction;
    p.d_gpu = gpu.power.dynamic_fraction;
    p.p_cpu_total_w = cpu.power.total_power_base_w;
    p.p_gpu_total_w = gpu.power.total_power_base_w;
    p.exponent = gpu.power.exponent;
    sum += solve_energy_neutral_r(p);
    ++count;
  }
  return count == 0 ? 0.0 : sum / static_cast<double>(count);
}

}  // namespace bsr::energy
