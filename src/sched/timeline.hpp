// Run-level trace: the sequence of iteration outcomes plus aggregates.
#pragma once

#include <vector>

#include "sched/tasks.hpp"

namespace bsr::sched {

struct RunTrace {
  std::vector<IterationOutcome> iterations;
  SimTime total_time;
  double cpu_energy_j = 0.0;
  double gpu_energy_j = 0.0;

  void add(const IterationOutcome& o);

  [[nodiscard]] double total_energy_j() const {
    return cpu_energy_j + gpu_energy_j;
  }
  /// Energy x Delay^2 (paper's ED2P metric), in J*s^2.
  [[nodiscard]] double ed2p() const;
  /// Overall throughput given the factorization's total flops.
  [[nodiscard]] double gflops(double total_flops) const;

  /// Signed slack series in seconds (positive = CPU-side, paper Fig. 2).
  [[nodiscard]] std::vector<double> slack_seconds() const;
};

}  // namespace bsr::sched
