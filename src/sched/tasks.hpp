// Per-iteration task durations and scheduling records.
//
// The pipeline models one iteration of the look-ahead blocked factorization
// (paper Fig. 1(b)): the CPU lane receives the next panel, factorizes it (PD)
// and ships it back, while the GPU lane runs the panel update (PU), the
// trailing-matrix update (TMU), and — when ABFT is active — checksum
// maintenance. The two lanes synchronize at the iteration boundary; the lane
// that finishes first idles, producing the slack the strategies reclaim.
#pragma once

#include "abft/checksum.hpp"
#include "common/sim_time.hpp"
#include "faultcamp/process.hpp"
#include "hw/platform.hpp"
#include "predict/workload.hpp"

namespace bsr::sched {

/// What a strategy decides before an iteration runs (paper Algorithm 2 output).
struct IterationDecision {
  hw::Mhz cpu_freq = 0;       ///< requested CPU clock (0 = keep current)
  hw::Mhz gpu_freq = 0;       ///< requested GPU clock (0 = keep current)
  bool adjust_cpu = false;    ///< actually perform the CPU DVFS transition
  bool adjust_gpu = false;
  hw::Guardband cpu_guardband = hw::Guardband::Default;
  hw::Guardband gpu_guardband = hw::Guardband::Default;
  abft::ChecksumMode abft_mode = abft::ChecksumMode::None;
  bool halt_idle_cpu = false;  ///< R2H: drop to the floor clock during slack
  bool halt_idle_gpu = false;
};

/// Raw (noise-free model) durations of the iteration's tasks at given clocks.
struct TaskDurations {
  SimTime pd;
  SimTime pu;
  SimTime tmu;
  SimTime transfer;
  SimTime chk_update;
  SimTime chk_verify;
};

/// Everything measured about one executed iteration.
struct IterationOutcome {
  int k = 0;
  hw::Mhz cpu_freq = 0;
  hw::Mhz gpu_freq = 0;
  abft::ChecksumMode abft_mode = abft::ChecksumMode::None;

  // Lane composition (already noise-inflated).
  SimTime pd;
  SimTime pu_tmu;       ///< PU + TMU busy time on the GPU
  SimTime transfer;
  SimTime abft_time;    ///< checksum update + verification
  SimTime cpu_dvfs;     ///< transition latency charged to the CPU lane
  SimTime gpu_dvfs;

  SimTime cpu_lane;     ///< transfer + PD (+ dvfs)
  SimTime gpu_lane;     ///< PU + TMU + ABFT (+ dvfs)
  SimTime span;         ///< max of the lanes; iteration wall time
  SimTime slack;        ///< gpu_lane - cpu_lane; >0 means the CPU idles

  double cpu_energy_j = 0.0;
  double gpu_energy_j = 0.0;

  // Base-clock-normalized measured durations for the predictors.
  double pd_base_s = 0.0;
  double pu_tmu_base_s = 0.0;
  double transfer_s = 0.0;

  // Fault-campaign accounting (all zero unless the run's faults block is
  // enabled — see faultcamp/process.hpp). `recovery` is the in-lane
  // correction latency plus the base-clock rollback recompute; it is part of
  // gpu_lane (and therefore span), not an extra additive channel.
  faultcamp::Resolution faults;
  SimTime recovery;

  [[nodiscard]] double energy_j() const { return cpu_energy_j + gpu_energy_j; }
};

/// Computes model durations for iteration k at the given clocks.
TaskDurations compute_durations(const predict::WorkloadModel& wl, int k,
                                const hw::PlatformProfile& platform,
                                hw::Mhz cpu_f, hw::Mhz gpu_f,
                                abft::ChecksumMode abft_mode);

}  // namespace bsr::sched
