#include "sched/tasks.hpp"

namespace bsr::sched {

TaskDurations compute_durations(const predict::WorkloadModel& wl, int k,
                                const hw::PlatformProfile& platform,
                                hw::Mhz cpu_f, hw::Mhz gpu_f,
                                abft::ChecksumMode abft_mode) {
  const predict::IterationWork w = wl.iteration(k);
  const hw::DeviceModel& cpu = platform.cpu;
  const hw::DeviceModel& gpu = platform.gpu;

  TaskDurations d;
  d.pd = cpu.perf.time_for_flops(w.pd_flops, hw::KernelClass::Panel, cpu_f,
                                 cpu.freq);
  d.pu = gpu.perf.time_for_flops(w.pu_flops, hw::KernelClass::Blas3, gpu_f,
                                 gpu.freq);
  d.tmu = gpu.perf.time_for_flops(w.tmu_flops, hw::KernelClass::Blas3, gpu_f,
                                  gpu.freq);
  d.transfer = platform.link.time_for_bytes(w.transfer_bytes);

  switch (abft_mode) {
    case abft::ChecksumMode::None:
      d.chk_update = SimTime::zero();
      d.chk_verify = SimTime::zero();
      break;
    case abft::ChecksumMode::SingleSide:
      d.chk_update = gpu.perf.time_for_flops(w.checksum_update_flops_single,
                                             hw::KernelClass::ChecksumUpdate,
                                             gpu_f, gpu.freq);
      d.chk_verify =
          gpu.perf.time_for_bytes(w.checksum_verify_bytes_single, gpu_f, gpu.freq);
      break;
    case abft::ChecksumMode::Full:
      d.chk_update = gpu.perf.time_for_flops(w.checksum_update_flops_full,
                                             hw::KernelClass::ChecksumUpdate,
                                             gpu_f, gpu.freq);
      d.chk_verify =
          gpu.perf.time_for_bytes(w.checksum_verify_bytes_full, gpu_f, gpu.freq);
      break;
  }
  return d;
}

}  // namespace bsr::sched
