// The simulated look-ahead CPU-GPU factorization pipeline.
//
// Executes one iteration at a time under a strategy-supplied
// IterationDecision, advancing a deterministic simulated clock, integrating
// energy through the platform's power models, and reporting measured
// durations back for the predictors. A calibrated efficiency-drift + noise
// model perturbs task times the way real kernels drift as the trailing matrix
// shrinks — this is what separates the enhanced slack predictor from the
// first-iteration baseline (paper Fig. 8).
#pragma once

#include "common/rng.hpp"
#include "hw/energy_meter.hpp"
#include "obs/trace.hpp"
#include "sched/tasks.hpp"
#include "sched/timeline.hpp"
#include "var/models.hpp"

namespace bsr::sched {

/// Multiplicative task-time perturbation: time is inflated by
/// (1 + drift * progress^2) * lognormal(sigma), where progress = k / K.
/// GPU kernels lose more efficiency late in the run (small trailing updates
/// underutilize the device); the CPU panel is steadier.
struct NoiseModel {
  double cpu_drift = 0.06;
  double gpu_drift = 0.22;
  double sigma = 0.02;     ///< relative measurement/run-to-run noise
  bool enabled = true;
};

struct PipelineConfig {
  predict::WorkloadModel workload;
  NoiseModel noise;
  std::uint64_t seed = 12345;
  /// Seeded stochastic execution models on top of the calibrated NoiseModel:
  /// per-lane efficiency drift walks, transfer/DVFS jitter, P-state
  /// quantization, and thermal boost budgets (bsr/variability.hpp). Disabled
  /// by default — the pipeline is then bit-for-bit the pre-variability one.
  var::Spec variability;
  /// Seeded statistical fault processes plus the recovery-cost model
  /// (bsr/faults.hpp): faults strike the GPU's update window at the SDC-table
  /// rates of its realized clock, corrected ones pay the correction latency
  /// in-lane, uncorrectable ones roll the update back and recompute at the
  /// base clock. Disabled by default — the pipeline is then bit-for-bit the
  /// no-fault one, with no RNG draws.
  faultcamp::Spec faults;
  /// Optional span recorder (bsr/observability.hpp). The pipeline emits
  /// per-iteration / per-lane spans into it at the same realization points
  /// that fill IterationOutcome; null (the default) skips every emission.
  /// Pure observation: values already computed are copied out, no RNG is
  /// drawn, and the run's results are bit-for-bit identical either way.
  obs::TraceRecorder* trace = nullptr;
};

/// Idle power of a lane whose strategy "halted" it (Race-to-Halt): the drop
/// to the floor state is hardware-governed, so a fraction of every slack
/// period still burns current-clock idle power while the governor observes
/// idleness. Shared by the single-node pipeline and the cluster engine so
/// the two models cannot drift apart.
double halted_idle_power(const hw::DeviceModel& dev, hw::Mhz current);

class HybridPipeline {
 public:
  HybridPipeline(const hw::PlatformProfile& platform, PipelineConfig config);

  [[nodiscard]] int num_iterations() const {
    return config_.workload.num_iterations();
  }
  [[nodiscard]] const predict::WorkloadModel& workload() const {
    return config_.workload;
  }
  [[nodiscard]] const hw::PlatformProfile& platform() const { return platform_; }

  [[nodiscard]] hw::Mhz cpu_freq() const { return cpu_dvfs_.current(); }
  [[nodiscard]] hw::Mhz gpu_freq() const { return gpu_dvfs_.current(); }
  [[nodiscard]] SimTime now() const { return now_; }
  [[nodiscard]] const hw::EnergyMeter& meter() const { return meter_; }

  /// Noise factor applied to a lane at iteration k (exposed so strategies'
  /// oracles in tests can reason about ground truth).
  [[nodiscard]] double noise_factor(hw::DeviceId dev, int k) const;

  /// The lane's variability state (inert when the config's block is
  /// disabled); exposed so tests can assert drift/throttle ground truth.
  [[nodiscard]] const var::LaneVariability& variability(hw::DeviceId dev) const {
    return dev == hw::DeviceId::Cpu ? cpu_var_ : gpu_var_;
  }

  /// Executes iteration k under the decision; integrates time and energy.
  IterationOutcome run_iteration(int k, const IterationDecision& d);

 private:
  hw::PlatformProfile platform_;
  PipelineConfig config_;
  hw::DvfsController cpu_dvfs_;
  hw::DvfsController gpu_dvfs_;
  hw::EnergyMeter meter_;
  SimTime now_;
  std::vector<double> cpu_noise_;  ///< precomputed per-iteration factors
  std::vector<double> gpu_noise_;
  var::LaneVariability cpu_var_;  ///< inert unless config_.variability.enabled
  var::LaneVariability gpu_var_;
  faultcamp::FaultProcess gpu_faults_;  ///< inert unless config_.faults.enabled
};

}  // namespace bsr::sched
