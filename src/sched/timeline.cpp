#include "sched/timeline.hpp"

namespace bsr::sched {

void RunTrace::add(const IterationOutcome& o) {
  iterations.push_back(o);
  total_time += o.span;
  cpu_energy_j += o.cpu_energy_j;
  gpu_energy_j += o.gpu_energy_j;
}

double RunTrace::ed2p() const {
  const double t = total_time.seconds();
  return total_energy_j() * t * t;
}

double RunTrace::gflops(double total_flops) const {
  const double t = total_time.seconds();
  return t <= 0.0 ? 0.0 : total_flops / t / 1e9;
}

std::vector<double> RunTrace::slack_seconds() const {
  std::vector<double> out;
  out.reserve(iterations.size());
  for (const auto& o : iterations) out.push_back(o.slack.seconds());
  return out;
}

}  // namespace bsr::sched
