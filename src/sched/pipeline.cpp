#include "sched/pipeline.hpp"

#include <cmath>

namespace bsr::sched {

HybridPipeline::HybridPipeline(const hw::PlatformProfile& platform,
                               PipelineConfig config)
    : platform_(platform),
      config_(std::move(config)),
      cpu_dvfs_(platform_.cpu.make_dvfs()),
      gpu_dvfs_(platform_.gpu.make_dvfs()) {
  const int iters = num_iterations();
  cpu_noise_.resize(iters, 1.0);
  gpu_noise_.resize(iters, 1.0);
  if (config_.noise.enabled && iters > 1) {
    Rng rng(config_.seed);
    for (int k = 0; k < iters; ++k) {
      const double progress =
          static_cast<double>(k) / static_cast<double>(iters - 1);
      const double jitter_cpu = std::exp(rng.normal(0.0, config_.noise.sigma));
      const double jitter_gpu = std::exp(rng.normal(0.0, config_.noise.sigma));
      cpu_noise_[k] =
          (1.0 + config_.noise.cpu_drift * progress * progress) * jitter_cpu;
      gpu_noise_[k] =
          (1.0 + config_.noise.gpu_drift * progress * progress) * jitter_gpu;
    }
  }
  if (config_.variability.enabled) {
    cpu_var_ = var::LaneVariability(config_.variability, config_.seed,
                                    /*lane=*/0, iters,
                                    platform_.cpu.freq.base_mhz);
    gpu_var_ = var::LaneVariability(config_.variability, config_.seed,
                                    /*lane=*/1, iters,
                                    platform_.gpu.freq.base_mhz);
  }
  if (config_.faults.enabled) {
    // Faults strike the GPU's update window (the numeric injector's exposure
    // region); the lane index matches the variability numbering (1 = GPU).
    gpu_faults_ = faultcamp::FaultProcess(config_.faults, config_.seed,
                                          /*lane=*/1);
  }
  if (config_.trace != nullptr) {
    // Up to 6 spans per iteration (iteration + two lanes + two dvfs +
    // recovery); one reservation keeps recording allocation-free.
    config_.trace->reserve(config_.trace->size() +
                           6 * static_cast<std::size_t>(iters));
  }
}

double HybridPipeline::noise_factor(hw::DeviceId dev, int k) const {
  return dev == hw::DeviceId::Cpu ? cpu_noise_[k] : gpu_noise_[k];
}

double halted_idle_power(const hw::DeviceModel& dev, hw::Mhz current) {
  // Race-to-Halt's drop to the floor state is hardware-governed: the
  // governor needs to observe idleness and step the clock down, so a
  // fraction of every slack period still burns current-clock idle power.
  // Explicit DVFS (SR/BSR) does not pay this, which is one reason slack
  // reclamation beats R2H in the paper's measurements.
  constexpr double kGovernorReactionFraction = 0.35;
  return kGovernorReactionFraction * dev.idle_power(current) +
         (1.0 - kGovernorReactionFraction) *
             dev.idle_power(dev.freq.min_mhz);
}

IterationOutcome HybridPipeline::run_iteration(int k, const IterationDecision& d) {
  const hw::Mhz cpu_f_before = cpu_dvfs_.current();
  const hw::Mhz gpu_f_before = gpu_dvfs_.current();
  cpu_dvfs_.set_guardband(d.cpu_guardband);
  gpu_dvfs_.set_guardband(d.gpu_guardband);

  SimTime cpu_dvfs_lat;
  SimTime gpu_dvfs_lat;
  if (config_.variability.enabled) {
    // Realize the requested clocks through the variability models: quantize
    // to the P-state grid and pass the thermal throttle. A throttled lane is
    // forced to base even when the plan kept its boosted clock, so the
    // admission runs every iteration, not only on explicit adjustments.
    const hw::Mhz cpu_req = d.adjust_cpu && d.cpu_freq > 0
                                ? d.cpu_freq
                                : cpu_dvfs_.current();
    const hw::Mhz gpu_req = d.adjust_gpu && d.gpu_freq > 0
                                ? d.gpu_freq
                                : gpu_dvfs_.current();
    const hw::Mhz cpu_granted = cpu_var_.admit_clock(
        cpu_req, platform_.cpu.freq,
        d.cpu_guardband == hw::Guardband::Optimized);
    const hw::Mhz gpu_granted = gpu_var_.admit_clock(
        gpu_req, platform_.gpu.freq,
        d.gpu_guardband == hw::Guardband::Optimized);
    if (cpu_granted != cpu_dvfs_.current()) {
      cpu_dvfs_lat = cpu_var_.dvfs_latency(cpu_dvfs_.set_frequency(cpu_granted));
    }
    if (gpu_granted != gpu_dvfs_.current()) {
      gpu_dvfs_lat = gpu_var_.dvfs_latency(gpu_dvfs_.set_frequency(gpu_granted));
    }
  } else {
    if (d.adjust_cpu && d.cpu_freq > 0) {
      cpu_dvfs_lat = cpu_dvfs_.set_frequency(d.cpu_freq);
    }
    if (d.adjust_gpu && d.gpu_freq > 0) {
      gpu_dvfs_lat = gpu_dvfs_.set_frequency(d.gpu_freq);
    }
  }
  const hw::Mhz fc = cpu_dvfs_.current();
  const hw::Mhz fg = gpu_dvfs_.current();

  TaskDurations t = compute_durations(config_.workload, k, platform_, fc, fg,
                                      d.abft_mode);
  // Efficiency drift + noise on the compute lanes (the link is steady).
  t.pd = t.pd * cpu_noise_[k];
  t.pu = t.pu * gpu_noise_[k];
  t.tmu = t.tmu * gpu_noise_[k];
  t.chk_update = t.chk_update * gpu_noise_[k];
  t.chk_verify = t.chk_verify * gpu_noise_[k];
  if (config_.variability.enabled) {
    // Stochastic drift walks on top of the calibrated deterministic model;
    // the transfer rides the device lane's jitter stream.
    const double cpu_drift = cpu_var_.compute_factor(k);
    const double gpu_drift = gpu_var_.compute_factor(k);
    t.pd = t.pd * cpu_drift;
    t.pu = t.pu * gpu_drift;
    t.tmu = t.tmu * gpu_drift;
    t.chk_update = t.chk_update * gpu_drift;
    t.chk_verify = t.chk_verify * gpu_drift;
    t.transfer = t.transfer * gpu_var_.transfer_factor();
  }

  IterationOutcome o;
  o.k = k;
  o.cpu_freq = fc;
  o.gpu_freq = fg;
  o.abft_mode = d.abft_mode;
  o.pd = t.pd;
  o.pu_tmu = t.pu + t.tmu;
  o.transfer = t.transfer;
  o.abft_time = t.chk_update + t.chk_verify;
  o.cpu_dvfs = cpu_dvfs_lat;
  o.gpu_dvfs = gpu_dvfs_lat;
  o.cpu_lane = cpu_dvfs_lat + t.transfer + t.pd;
  o.gpu_lane = gpu_dvfs_lat + o.pu_tmu + o.abft_time;

  // --- Fault exposure and recovery (inert unless config_.faults.enabled) ----
  SimTime correction;
  SimTime rollback;
  if (config_.faults.enabled) {
    // The update window runs at fg under the decision's guardband: sample the
    // fault process at the SDC-table rates of that state and resolve the
    // counts against the checksum mode that actually protected the window.
    const hw::ErrorRates rates =
        platform_.gpu.errors.rates(fg, d.gpu_guardband);
    const faultcamp::FaultCounts counts = gpu_faults_.sample(rates, o.pu_tmu);
    o.faults = faultcamp::resolve(counts, o.abft_mode, config_.faults.rollback);
    if (o.faults.corrected() > 0) {
      correction = SimTime::from_seconds(
          config_.faults.correction_s *
          static_cast<double>(o.faults.corrected()));
    }
    if (o.faults.rollbacks > 0) {
      // The redo re-runs the GPU update (with its checksum pass) at the base
      // clock — the safe, fault-free state, matching the numeric recovery
      // model in core/decomposer.cpp.
      const sched::TaskDurations redo = compute_durations(
          config_.workload, k, platform_, platform_.cpu.freq.base_mhz,
          platform_.gpu.freq.base_mhz, d.abft_mode);
      rollback = redo.pu + redo.tmu + redo.chk_update + redo.chk_verify;
    }
    o.recovery = correction + rollback;
    // Recovery delays the GPU lane in place, so it genuinely eats into the
    // iteration's slack and shifts every later strategy decision.
    o.gpu_lane += o.recovery;
  }
  o.span = max(o.cpu_lane, o.gpu_lane);
  o.slack = o.gpu_lane - o.cpu_lane;

  // --- Energy integration ----------------------------------------------------
  const hw::DeviceModel& cpu = platform_.cpu;
  const hw::DeviceModel& gpu = platform_.gpu;
  const double cpu_busy_p = cpu.power.busy_power(fc, d.cpu_guardband,
                                                 cpu.guardband, cpu.freq);
  const double gpu_busy_p = gpu.power.busy_power(fg, d.gpu_guardband,
                                                 gpu.guardband, gpu.freq);
  const double cpu_idle_p =
      d.halt_idle_cpu ? halted_idle_power(cpu, fc) : cpu.idle_power(fc);
  const double gpu_idle_p =
      d.halt_idle_gpu ? halted_idle_power(gpu, fg) : gpu.idle_power(fg);

  SimTime at = now_;
  auto rec = [&](hw::DeviceId dev, SimTime dur, double p, const char* tag,
                 double& sink) {
    meter_.record(dev, at, dur, p, tag);
    sink += p * dur.seconds();
  };

  // CPU lane: dvfs -> transfer (DMA; CPU effectively idle) -> PD -> idle.
  rec(hw::DeviceId::Cpu, cpu_dvfs_lat, cpu_idle_p, "dvfs", o.cpu_energy_j);
  rec(hw::DeviceId::Cpu, t.transfer, cpu_idle_p, "transfer", o.cpu_energy_j);
  rec(hw::DeviceId::Cpu, t.pd, cpu_busy_p, "PD", o.cpu_energy_j);
  rec(hw::DeviceId::Cpu, o.span - o.cpu_lane, cpu_idle_p, "idle", o.cpu_energy_j);

  // GPU lane: dvfs -> PU+TMU -> ABFT -> correction/rollback -> idle.
  rec(hw::DeviceId::Gpu, gpu_dvfs_lat, gpu_idle_p, "dvfs", o.gpu_energy_j);
  rec(hw::DeviceId::Gpu, o.pu_tmu, gpu_busy_p, "TMU+PU", o.gpu_energy_j);
  rec(hw::DeviceId::Gpu, o.abft_time, gpu_busy_p, "abft", o.gpu_energy_j);
  if (correction > SimTime::zero()) {
    // Checksum corrections run in-lane at the window's clock.
    rec(hw::DeviceId::Gpu, correction, gpu_busy_p, "correct", o.gpu_energy_j);
  }
  if (rollback > SimTime::zero()) {
    // The rollback recompute runs at the base clock with the safe default
    // guardband — no SDCs can strike the redo.
    rec(hw::DeviceId::Gpu, rollback,
        gpu.busy_power(gpu.freq.base_mhz, hw::Guardband::Default), "rollback",
        o.gpu_energy_j);
  }
  rec(hw::DeviceId::Gpu, o.span - o.gpu_lane, gpu_idle_p, "idle", o.gpu_energy_j);

  // --- Base-clock-normalized profiles for the predictors ----------------------
  const double cpu_scale = std::pow(
      static_cast<double>(fc) / static_cast<double>(cpu.freq.base_mhz),
      cpu.perf.freq_exponent);
  const double gpu_scale = std::pow(
      static_cast<double>(fg) / static_cast<double>(gpu.freq.base_mhz),
      gpu.perf.freq_exponent);
  o.pd_base_s = t.pd.seconds() * cpu_scale;
  o.pu_tmu_base_s = o.pu_tmu.seconds() * gpu_scale;
  o.transfer_s = t.transfer.seconds();

  if (config_.variability.enabled) {
    // Thermal accounting: above-base busy time drains the boost budget, the
    // rest of the iteration span recovers it.
    const double cpu_busy = t.pd.seconds();
    const double gpu_busy = (o.pu_tmu + o.abft_time).seconds();
    cpu_var_.account(fc, cpu_busy, o.span.seconds() - cpu_busy);
    gpu_var_.account(fg, gpu_busy, o.span.seconds() - gpu_busy);
  }

  if (config_.trace != nullptr) {
    // Observation only: every value below was already realized above, so a
    // traced run's IterationOutcome stream — and therefore its RunReport —
    // is byte-identical to an untraced one.
    obs::TraceRecorder& tr = *config_.trace;
    const std::int64_t t0 = now_.ns();

    obs::TraceSpan it;
    it.kind = obs::SpanKind::Iteration;
    it.start_ns = t0;
    it.dur_ns = o.span.ns();
    it.k = k;
    it.slack_ns = o.slack.ns();
    tr.record(it);

    obs::TraceSpan cl;
    cl.kind = obs::SpanKind::CpuLane;
    cl.start_ns = t0;
    cl.dur_ns = o.cpu_lane.ns();
    cl.k = k;
    cl.lane = 0;
    cl.freq_mhz = static_cast<std::int32_t>(fc);
    cl.dvfs_ns = cpu_dvfs_lat.ns();
    tr.record(cl);

    obs::TraceSpan gl;
    gl.kind = obs::SpanKind::GpuLane;
    gl.start_ns = t0;
    gl.dur_ns = o.gpu_lane.ns();
    gl.k = k;
    gl.lane = 1;
    gl.freq_mhz = static_cast<std::int32_t>(fg);
    gl.abft_mode = static_cast<std::uint8_t>(o.abft_mode);
    gl.dvfs_ns = gpu_dvfs_lat.ns();
    gl.recovery_ns = o.recovery.ns();
    tr.record(gl);

    if (cpu_dvfs_lat > SimTime::zero()) {
      obs::TraceSpan tv;
      tv.kind = obs::SpanKind::Dvfs;
      tv.start_ns = t0;
      tv.dur_ns = cpu_dvfs_lat.ns();
      tv.k = k;
      tv.lane = 0;
      tv.from_mhz = static_cast<std::int32_t>(cpu_f_before);
      tv.freq_mhz = static_cast<std::int32_t>(fc);
      tr.record(tv);
    }
    if (gpu_dvfs_lat > SimTime::zero()) {
      obs::TraceSpan tv;
      tv.kind = obs::SpanKind::Dvfs;
      tv.start_ns = t0;
      tv.dur_ns = gpu_dvfs_lat.ns();
      tv.k = k;
      tv.lane = 1;
      tv.from_mhz = static_cast<std::int32_t>(gpu_f_before);
      tv.freq_mhz = static_cast<std::int32_t>(fg);
      tr.record(tv);
    }
    if (o.faults.injected.total() > 0 || o.recovery > SimTime::zero()) {
      // The GPU lane runs dvfs -> PU+TMU -> ABFT -> recovery, so the
      // recovery window opens where the checksum pass ends.
      obs::TraceSpan rv;
      rv.kind = obs::SpanKind::Recovery;
      rv.start_ns = t0 + (gpu_dvfs_lat + o.pu_tmu + o.abft_time).ns();
      rv.dur_ns = o.recovery.ns();
      rv.k = k;
      rv.lane = 1;
      rv.freq_mhz = static_cast<std::int32_t>(fg);
      rv.abft_mode = static_cast<std::uint8_t>(o.abft_mode);
      rv.recovery_ns = o.recovery.ns();
      rv.faults_injected =
          static_cast<std::int64_t>(o.faults.injected.total());
      rv.faults_corrected = static_cast<std::int64_t>(o.faults.corrected());
      rv.rollbacks = static_cast<std::int64_t>(o.faults.rollbacks);
      tr.record(rv);
    }
  }

  now_ += o.span;
  return o;
}

}  // namespace bsr::sched
