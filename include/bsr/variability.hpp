// bsr/variability.hpp — seeded stochastic execution models behind the facade.
//
// The default simulator is perfectly repeatable, so the paper's predictors
// (§3.2.1) are exact and Fig. 8's comparison degenerates. Enabling the
// variability block puts a run in the regime the paper actually targets:
// per-device efficiency drift (a seeded random walk), transfer jitter, DVFS
// transition jitter plus coarse P-state grids, and a sustained-boost thermal
// budget that makes BSR's overclocked critical lane pay for long boosts.
//
//   bsr::RunConfig cfg;
//   cfg.variability = bsr::make_variability("drift");  // a preset, or...
//   cfg.variability.enabled = true;                    // ...field by field
//   cfg.variability.drift = 0.02;
//   cfg.seed = 7;                  // variability streams derive from here
//   auto report = bsr::run(cfg);
//
// Guarantees:
//   * Off by default: a disabled block is bit-for-bit the pre-variability
//     simulator, and no random numbers are drawn.
//   * Deterministic on: for a fixed (config, seed) a run is bitwise
//     identical at any sweep thread count — streams derive from the seed
//     with the same splitmix64 mixing as bsr::derive_cell_seed, never from
//     execution order across cells.
//   * Fingerprinted: every field participates in RunConfig::fingerprint(),
//     so the sweep cache never conflates two different worlds.
#pragma once

#include <string>

#include "bsr/registry.hpp"
#include "var/models.hpp"

namespace bsr {

/// The variability block carried by bsr::RunConfig (see var::Spec for the
/// field-by-field model documentation).
using VariabilityConfig = var::Spec;

/// Registry of named variability presets, pre-loaded with the built-ins:
///   off      — the disabled default (alias: none);
///   drift    — calibrated efficiency drift only, the Fig. 8 regime where
///              the enhanced predictor separates from first-iteration
///              profiling (alias: fig08);
///   jitter   — mild all-around noise: small drift, transfer and DVFS
///              jitter, no throttling (alias: mild);
///   hostile  — a pessimistic machine: drift, heavy jitter, a coarse
///              P-state grid, and a tight boost budget (alias: throttle).
Registry<VariabilityConfig>& variability_presets();

/// Resolves a preset key to its VariabilityConfig (throws like Registry::get
/// on a miss, listing the known presets).
VariabilityConfig make_variability(const std::string& key);

/// Registers the grid benches' standard `--variability <preset>` and
/// `--seed <n>` flags (chainable, mirrors add_list_flag).
Cli& add_variability_flags(Cli& cli);

/// Applies the flags registered by add_variability_flags to `cfg`: sets
/// cfg.seed and resolves the preset into cfg.variability. An unknown preset
/// prints "error: ..." (listing the known presets) to stderr and exits 2,
/// in the same style as Cli::parse_or_exit.
void apply_variability_flags_or_exit(const Cli& cli, RunConfig& cfg);

}  // namespace bsr
