// bsr/sweep.hpp — grid expansion, parallel execution, and baseline caching.
//
// The paper's headline figures are grids of runs (strategy x factorization x
// n x r), so grids are the API's default execution model: declare a base
// RunConfig plus axes, and Sweep expands the cartesian product, runs the
// unique configurations on the process-wide thread pool, and hands back rows
// in deterministic expansion order. Two properties the benches rely on:
//
//  * Result cache. Runs are keyed by RunConfig::fingerprint(); a config
//    requested twice (e.g. the Original baseline shared by every comparison
//    row, or an Original cell that is also the baseline) executes exactly
//    once. The cache persists across run() calls on the same Sweep.
//  * Determinism. A cell's seed is part of its config: it is whatever the
//    base config and axis mutators set (trial_axis derives per-trial seeds
//    from (root seed, trial index)) and never depends on which worker runs
//    the cell, so an N-thread sweep is bitwise identical to the same sweep
//    on one thread, rows included, in the same order. Note the flip side:
//    two cells with identical configs (e.g. a repetition axis that does not
//    touch the seed) are ONE cached run, not independent noisy trials —
//    repeat through trial_axis.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bsr/result_sink.hpp"
#include "bsr/run_config.hpp"
#include "core/report.hpp"

namespace bsr {

/// Re-exported per-run result (time, energy, ED2P, ABFT stats, residual).
using core::RunReport;

/// One point on an axis: a display label plus the config mutation it applies.
struct AxisPoint {
  std::string label;                      ///< coordinate label in SweepRow
  std::function<void(RunConfig&)> apply;  ///< mutation this point applies
};

/// A named dimension of the grid. Axes are expanded in the order they are
/// added to the Sweep, first axis outermost.
struct Axis {
  std::string name;               ///< axis (column) name, unique per sweep
  std::vector<AxisPoint> points;  ///< the axis's values, in display order
};

// Built-in axis builders for the common grid dimensions. Anything else is a
// one-liner with a custom Axis{name, {AxisPoint{label, mutator}, ...}}.

/// Axis over strategy registry keys (labels = the keys as given).
Axis strategy_axis(const std::vector<std::string>& keys);
/// Same, with explicit display labels: {{"original", "Org"}, ...}. (Not an
/// overload of strategy_axis — brace-init lists of string literals make the
/// two signatures ambiguous.)
Axis strategy_axis_labeled(
    const std::vector<std::pair<std::string, std::string>>& key_labels);
/// Axis over factorizations (labels "Cholesky" / "LU" / "QR").
Axis factorization_axis(const std::vector<Factorization>& facts);
/// Sets n per point; also re-tunes b (b = 0) unless retune_block is false.
Axis size_axis(const std::vector<std::int64_t>& ns, bool retune_block = true);
/// Axis over BSR reclamation ratios r.
Axis ratio_axis(const std::vector<double>& rs);
/// Axis over ABFT policy registry keys.
Axis abft_axis(const std::vector<std::string>& policies);
/// Axis over element widths (8 = "double", 4 = "single").
Axis precision_axis(const std::vector<int>& elem_bytes);
/// `trials` points labelled "0".."trials-1"; point t sets
/// seed = derive_cell_seed(root_seed, t) (per-cell, thread-count independent).
Axis trial_axis(int trials, std::uint64_t root_seed);

/// A second cache tier behind Sweep's in-memory fingerprint map: a durable
/// fingerprint -> RunReport store. The serving subsystem's on-disk store
/// (bsr/serve.hpp, serve::DiskResultStore) implements this so a daemon —
/// or a bench re-run in a fresh process — can mount results computed by an
/// earlier process; tests mount in-memory fakes. Implementations must treat
/// corrupt or schema-incompatible records as loud misses (warn on stderr,
/// return nullptr), never as errors that abort the sweep.
class ResultStore {
 public:
  virtual ~ResultStore() = default;
  /// The report stored under `fingerprint`, or nullptr on a miss.
  [[nodiscard]] virtual std::shared_ptr<const RunReport> load(
      const std::string& fingerprint) = 0;
  /// Persists `report` under `fingerprint`, overwriting any existing record.
  virtual void save(const std::string& fingerprint,
                    const RunReport& report) = 0;
};

/// Cumulative cache-effectiveness counters for one Sweep, accumulated across
/// run() calls. Every requested cell or baseline resolves to exactly one of
/// the four outcomes, so requested == memory_hits + coalesced + store_hits +
/// executed always holds. The serve daemon's `stats` response and
/// bench_serve report these directly.
struct SweepCounters {
  std::uint64_t requested = 0;    ///< cells + baselines, with multiplicity
  std::uint64_t memory_hits = 0;  ///< served from the in-memory cache
  std::uint64_t coalesced = 0;    ///< deduplicated within a single run() grid
  std::uint64_t store_hits = 0;   ///< served from the mounted ResultStore
  std::uint64_t executed = 0;     ///< actually executed
};

/// One grid cell after execution. `report` is shared with every other row
/// that requested the same fingerprint; `baseline` is null unless
/// Sweep::baseline() was set.
struct SweepRow {
  std::size_t index = 0;  ///< position in expansion order
  std::map<std::string, std::string> coords;  ///< axis name -> point label
  RunConfig config;                         ///< the cell's full configuration
  std::shared_ptr<const RunReport> report;  ///< the cell's executed result
  std::shared_ptr<const RunReport> baseline;  ///< baseline result, or null

  /// Energy saved vs the baseline (0 when no baseline was requested).
  [[nodiscard]] double energy_saving() const;
  /// ED2P reduction vs the baseline (0 when no baseline was requested).
  [[nodiscard]] double ed2p_reduction() const;
  /// Speedup vs the baseline (1.0 when no baseline was requested).
  [[nodiscard]] double speedup() const;
};

/// A finished grid: rows in expansion order plus execution statistics.
class SweepResult {
 public:
  std::vector<std::string> axis_names;  ///< axis names, outermost first
  std::vector<SweepRow> rows;  ///< expansion order, invariant to thread count
  std::size_t requested_runs = 0;  ///< cells + baselines, with multiplicity
  std::size_t unique_runs = 0;     ///< configs actually executed this run()
  std::size_t cache_hits = 0;      ///< requested_runs - unique_runs
  std::size_t store_hits = 0;      ///< of cache_hits: from the ResultStore
  double wall_seconds = 0.0;       ///< wall-clock time of this run() call

  /// Executed (unique) cells per wall-clock second of this run() — the sweep
  /// throughput metric the BENCH_kernels.json trajectory and the CI perf
  /// gate track. 0 when nothing executed or the clock read as zero.
  [[nodiscard]] double cells_per_second() const {
    return wall_seconds > 0.0
               ? static_cast<double>(unique_runs) / wall_seconds
               : 0.0;
  }

  /// The unique row matching every given (axis, label) pair; throws
  /// std::out_of_range (listing the coords) when none or several match.
  [[nodiscard]] const SweepRow& at(
      const std::vector<std::pair<std::string, std::string>>& coords) const;
  /// All rows whose `axis` coordinate equals `label`, in expansion order.
  [[nodiscard]] std::vector<const SweepRow*> where(
      const std::string& axis, const std::string& label) const;
};

/// Declarative grid runner: a base RunConfig plus axes, executed in parallel
/// with fingerprint-keyed caching (see the file comment for the guarantees).
class Sweep {
 public:
  /// Every cell starts from `base`; axis points mutate copies of it.
  explicit Sweep(RunConfig base = {});

  /// Appends a grid dimension (expanded outermost-first, chainable).
  Sweep& over(Axis axis);
  /// Attach to every cell a baseline run of the same configuration with
  /// `strategy_key` substituted (BSR-specific knobs reset to defaults unless
  /// the baseline is BSR itself). Baselines go through the result cache, so
  /// all cells of one comparison group share a single baseline execution.
  Sweep& baseline(std::string strategy_key);
  /// 1 = serial on the calling thread; 0 (default) = the process-wide
  /// ThreadPool::shared(); k > 1 = a dedicated pool of k workers.
  Sweep& threads(int n);
  /// Mounts a durable second cache tier: run() consults it on in-memory
  /// misses (a hit is promoted into the memory cache) and writes every
  /// newly executed report back through it. nullptr unmounts. Chainable.
  Sweep& store(std::shared_ptr<ResultStore> store);

  /// Expands the grid, validates every cell, executes all configurations not
  /// already cached, and returns rows in expansion order. Worker exceptions
  /// are captured and rethrown (first failing cell wins) after the pool
  /// drains. Reusable: a second run() resolves repeats from the cache.
  [[nodiscard]] SweepResult run();

  /// Number of distinct fingerprints in the persistent result cache.
  [[nodiscard]] std::size_t cache_size() const { return cache_.size(); }
  /// Cache-effectiveness counters accumulated across run() calls.
  [[nodiscard]] const SweepCounters& counters() const { return counters_; }
  /// Drops every cached result (subsequent run() calls re-execute). The
  /// mounted ResultStore and the counters are untouched.
  Sweep& clear_cache();

 private:
  RunConfig base_;
  std::vector<Axis> axes_;
  std::optional<std::string> baseline_strategy_;
  int threads_ = 0;
  std::map<std::string, std::shared_ptr<const RunReport>> cache_;
  std::shared_ptr<ResultStore> store_;
  SweepCounters counters_;
};

/// One output column: name + extractor over a finished row.
struct MetricColumn {
  std::string name;                                  ///< column header
  std::function<std::string(const SweepRow&)> value;  ///< cell renderer
};

/// The default column set: one column per axis, then time_s / gflops /
/// energy_j / ed2p, and — when the sweep carried a baseline — saving,
/// ed2p_cut, and speedup relative to it.
std::vector<MetricColumn> standard_columns(const SweepResult& result);

/// Streams the result through a sink: begin(column names), one add_row per
/// sweep row, end().
void emit(const SweepResult& result, const std::vector<MetricColumn>& columns,
          ResultSink& sink);
/// emit() with the standard_columns() column set.
void emit(const SweepResult& result, ResultSink& sink);

}  // namespace bsr
