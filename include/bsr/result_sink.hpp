// bsr/result_sink.hpp — structured output backends for experiment results.
//
// A ResultSink receives one header row followed by data rows (all values
// pre-formatted as strings) and renders them to a stream. Three backends ship
// built in — fixed-width paper-style tables, CSV, and JSON — and new ones
// plug in through bsr::result_sinks() (see bsr/registry.hpp).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace bsr {

/// Driver fail-fast for a --format flag: exits(2) with the registry's live
/// known-key list when `key` is not a registered sink, so a typo is caught
/// before a long sweep runs (and runtime-registered sinks are listed too).
void require_result_sink_or_exit(const std::string& key);

/// Structured-output backend interface: one begin(columns), rows, one end().
/// Implementations render to a stream; register new ones in
/// bsr::result_sinks() to make them reachable from every --format flag.
class ResultSink {
 public:
  virtual ~ResultSink() = default;  ///< virtual: deleted through the base

  /// Starts a result set. Must be called exactly once, before any add_row.
  virtual void begin(const std::vector<std::string>& columns) = 0;
  /// Appends one data row; `values` must match begin()'s column count.
  virtual void add_row(const std::vector<std::string>& values) = 0;
  /// Finishes the result set and flushes the rendering to the stream.
  virtual void end() = 0;
};

/// Fixed-width table (common/table_printer.hpp rendering), the default
/// human-facing backend. Buffers rows and prints on end().
class TableSink final : public ResultSink {
 public:
  /// Renders to `out` (kept by reference; must outlive the sink).
  explicit TableSink(std::ostream& out) : out_(&out) {}
  void begin(const std::vector<std::string>& columns) override;  ///< \copydoc ResultSink::begin
  void add_row(const std::vector<std::string>& values) override;  ///< \copydoc ResultSink::add_row
  void end() override;  ///< \copydoc ResultSink::end

 private:
  std::ostream* out_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

/// RFC-4180-style CSV: header row first, fields quoted when they contain a
/// comma, quote, or newline. Streams rows as they arrive.
class CsvSink final : public ResultSink {
 public:
  /// Renders to `out` (kept by reference; must outlive the sink).
  explicit CsvSink(std::ostream& out) : out_(&out) {}
  void begin(const std::vector<std::string>& columns) override;  ///< \copydoc ResultSink::begin
  void add_row(const std::vector<std::string>& values) override;  ///< \copydoc ResultSink::add_row
  void end() override;  ///< \copydoc ResultSink::end

 private:
  std::ostream* out_;
  std::size_t columns_ = 0;
};

/// JSON array of objects keyed by column name. Values that parse fully as
/// finite numbers are emitted unquoted so downstream tooling gets real
/// numbers; everything else is emitted as a JSON string.
class JsonSink final : public ResultSink {
 public:
  /// Renders to `out` (kept by reference; must outlive the sink).
  explicit JsonSink(std::ostream& out) : out_(&out) {}
  void begin(const std::vector<std::string>& columns) override;  ///< \copydoc ResultSink::begin
  void add_row(const std::vector<std::string>& values) override;  ///< \copydoc ResultSink::add_row
  void end() override;  ///< \copydoc ResultSink::end

 private:
  std::ostream* out_;
  std::vector<std::string> columns_;
  bool first_row_ = true;
};

}  // namespace bsr
