// bsr/bsr.hpp — umbrella header: the stable public API of the BSR library.
//
// Everything a driver needs to declare, run, and report experiment grids:
//
//   bsr::RunConfig   one validated configuration (bsr/run_config.hpp)
//   bsr::Registry    string-keyed strategies / platforms / ABFT policies /
//                    sinks (bsr/registry.hpp)
//   bsr::Sweep       parallel grid execution with baseline caching
//                    (bsr/sweep.hpp)
//   bsr::ResultSink  Table / CSV / JSON structured output
//                    (bsr/result_sink.hpp)
//   bsr::ClusterConfig  N-device scale-out runs on the event-driven cluster
//                    engine, with per-device reporting (bsr/cluster.hpp)
//   bsr::VariabilityConfig  seeded stochastic execution models (drift,
//                    jitter, thermal throttling) (bsr/variability.hpp)
//   bsr::FaultConfig / bsr::FaultCampaign  seeded fault-injection campaigns
//                    with recovery-cost simulation (bsr/faults.hpp)
//   bsr::Decomposer  the single-run facade, re-exported from core
//   bsr::Cli         registered-flag command-line parsing with --help
//   bsr::TraceRecorder / bsr::MetricsRegistry  deterministic run tracing
//                    with Perfetto export, unified metrics, build stamps
//                    (bsr/observability.hpp)
//
// Quickstart:
//   bsr::RunConfig cfg;                       // paper defaults: LU, n=30720
//   cfg.strategy = "bsr";                     // any bsr::strategies() key
//   cfg.reclamation_ratio = 0.0;              // r=0: maximum energy saving
//   auto report = bsr::run(cfg);              // one run, or...
//   auto grid = bsr::Sweep(cfg)               // ...a cached, parallel grid
//                   .over(bsr::strategy_axis({"r2h", "sr", "bsr"}))
//                   .baseline("original")
//                   .run();
//
// The deeper module headers ("hw/platform.hpp", "sched/pipeline.hpp", ...)
// remain available for advanced use but carry no stability promise; see
// docs/ARCHITECTURE.md.
#pragma once

#include "bsr/cluster.hpp"
#include "bsr/faults.hpp"
#include "bsr/observability.hpp"
#include "bsr/registry.hpp"
#include "bsr/result_sink.hpp"
#include "bsr/run_config.hpp"
#include "bsr/sweep.hpp"
#include "bsr/variability.hpp"
#include "common/cli.hpp"
#include "common/stats.hpp"
#include "common/stdio_stream.hpp"
#include "common/table_printer.hpp"
#include "core/decomposer.hpp"
#include "core/report.hpp"
#include "core/trace_io.hpp"
#include "energy/pareto.hpp"
#include "hw/platform.hpp"

/// The stable public API of the BSR library: one-run and grid execution,
/// string-keyed registries of every pluggable ingredient, structured result
/// sinks, cluster scale-out, seeded execution-variability models, and seeded
/// fault-injection campaigns with recovery-cost simulation.
namespace bsr {

/// Re-exported single-run engine (construct with a resolved platform, call
/// run(RunConfig)); prefer bsr::run / bsr::Sweep unless you need to pin a
/// platform object across runs.
using core::Decomposer;
/// Re-exported performance-tuned block size for a matrix order (the paper's
/// "block size tuned for performance"; RunConfig::b = 0 applies it).
using core::tuned_block;

}  // namespace bsr
