// bsr/faults.hpp — seeded fault-injection campaigns with recovery-cost
// simulation behind the facade.
//
// The paper's headline safety claim (Fig. 9) is that BSR's overclocked
// critical lane stays *safe*: ABFT-OC catches the SDCs the reduced guardband
// induces, and recovery costs less than the reclaimed slack is worth. The
// numeric path demonstrates that with real corruption on bounded matrices;
// this facade exposes the *statistical* counterpart — composable, seeded
// fault processes plus a recovery-cost model — which works at paper scale, on
// the N-device cluster engine, and across thousands of trials:
//
//   bsr::RunConfig cfg;
//   cfg.faults = bsr::make_faults("poisson");   // a preset, or...
//   cfg.faults.enabled = true;                  // ...field by field
//   cfg.faults.rate_multiplier = 25.0;
//   auto report = bsr::run(cfg);                // one seeded realization
//   report.fault_coverage();                    // 1 - unrecovered/injected
//
//   bsr::FaultCampaign camp(cfg, /*trials=*/20);  // N realizations per cell
//   auto result = camp.over(bsr::strategy_axis({"sr", "bsr"})).run();
//   bsr::emit(result, *bsr::make_result_sink("json", bsr::stdout_stream()));
//
// Guarantees:
//   * Off by default: a disabled block is bit-for-bit the no-fault
//     simulator, and no random numbers are drawn.
//   * Deterministic on: per-lane streams derive from (seed, lane, purpose)
//     with the same splitmix64 mixing as bsr::derive_cell_seed, never from
//     execution order, so a campaign is bitwise identical at any sweep
//     thread count.
//   * Fingerprinted: every field participates in RunConfig::fingerprint(),
//     and a campaign trial varies only faults.seed — its faults-off baseline
//     is one shared cached run.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bsr/registry.hpp"
#include "bsr/sweep.hpp"
#include "faultcamp/process.hpp"

namespace bsr {

/// The fault block carried by bsr::RunConfig (see faultcamp::Spec for the
/// field-by-field model documentation).
using FaultConfig = faultcamp::Spec;

/// Registry of named fault presets, pre-loaded with the built-ins:
///   off         — the disabled default (alias: none);
///   paper_fig09 — the deterministic fig09 regime: exactly 2 x 0D (+ 1 x 1D
///                 where the table exposes 1D) faults on every exposed
///                 iteration, rollback on — the reproducible baseline that
///                 adaptive coverage is compared against (alias: fig09);
///   poisson     — seeded Poisson arrivals at the device SDC-table rates,
///                 rollback on: the statistical campaign default (alias:
///                 on);
///   hostile     — a flaky machine: amplified rates, bursty multi-fault
///                 arrivals, per-device hazard spread, and a background rate
///                 that strikes even fault-free clocks — the regime where
///                 adaptive protection can genuinely miss (alias: bursty).
Registry<FaultConfig>& fault_presets();

/// Resolves a preset key to its FaultConfig (throws like Registry::get on a
/// miss, listing the known presets).
FaultConfig make_faults(const std::string& key);

/// Registers the benches' standard `--faults <preset>` flag (chainable,
/// mirrors add_variability_flags). `def` is the registered default:
/// campaign drivers pass "poisson" (a campaign over a disabled preset
/// measures nothing), everything else keeps "off". An explicit user choice
/// — including `--faults off` — is always honored as given.
Cli& add_fault_flags(Cli& cli, const std::string& def = "off");

/// Applies the flag registered by add_fault_flags to `cfg`: resolves the
/// preset into cfg.faults. An unknown preset prints "error: ..." (listing
/// the known presets) to stderr and exits 2, in the same style as
/// Cli::parse_or_exit.
void apply_fault_flags_or_exit(const Cli& cli, RunConfig& cfg);

/// One campaign cell after execution: a grid coordinate, its shared
/// faults-off baseline, the N seeded trial reports, and the aggregates the
/// campaign computed from them.
struct CampaignCell {
  /// Axis name -> point label (the campaign's internal trial axis removed).
  std::map<std::string, std::string> coords;
  /// The cell's faults-on configuration (at the root fault seed).
  RunConfig config;
  /// The cell's faults-off run: same seed, same world, no fault process —
  /// the denominator of `overhead`. Shared through the sweep cache.
  std::shared_ptr<const RunReport> baseline;
  /// The N trial reports, in trial order (each differs only in faults.seed).
  std::vector<std::shared_ptr<const RunReport>> trials;

  // -- aggregates over the trials --------------------------------------------
  std::int64_t injected = 0;     ///< faults sampled, summed over trials
  std::int64_t corrected = 0;    ///< repaired in place by the checksums
  std::int64_t recovered = 0;    ///< uncorrectable, recovered by rollback
  std::int64_t unrecovered = 0;  ///< silent, or rollback disabled
  int rollbacks = 0;             ///< update redos triggered
  /// Fraction of injected faults covered (corrected + recovered), 1.0 when
  /// nothing was injected — the campaign counterpart of fig09's numeric
  /// correctness rate.
  double coverage = 1.0;
  /// Mean trial wall time over the faults-off baseline, minus one: the cost
  /// of living with (and recovering from) the faults.
  double overhead = 0.0;
  /// Mean in-lane recovery time (correction + rollbacks) per trial, seconds.
  double recovery_s = 0.0;
  double p50_s = 0.0;  ///< median trial wall time (seconds)
  double p95_s = 0.0;  ///< 95th-percentile trial wall time (tail latency)
  double p99_s = 0.0;  ///< 99th-percentile trial wall time
};

/// A finished campaign: cells in expansion order plus execution statistics.
struct CampaignResult {
  std::vector<std::string> axis_names;  ///< user axes, outermost first
  std::vector<CampaignCell> cells;      ///< expansion order
  int trials = 0;                       ///< seeded trials per cell
  std::size_t requested_runs = 0;  ///< cells x (trials + baseline)
  std::size_t unique_runs = 0;     ///< configs actually executed
  double wall_seconds = 0.0;       ///< wall-clock time of run()

  /// Executed runs per wall-clock second — the campaign-throughput metric
  /// mirrored by SweepResult::cells_per_second().
  [[nodiscard]] double runs_per_second() const {
    return wall_seconds > 0.0
               ? static_cast<double>(unique_runs) / wall_seconds
               : 0.0;
  }
};

/// Executes N seeded fault realizations per grid cell on top of bsr::Sweep
/// and aggregates coverage, overhead, and tail-latency percentiles. Each
/// trial varies ONLY faults.seed (derived from the root seed with
/// bsr::derive_cell_seed), so the timing world is held fixed and the
/// faults-off baseline isolates exactly the fault cost; the baseline is one
/// cached run shared by all trials of a cell. Campaigns inherit every Sweep
/// guarantee — in particular, bitwise identical results at any thread count.
class FaultCampaign {
 public:
  /// Every cell starts from `base` (its faults block should be enabled —
  /// with it disabled every trial equals the baseline and the aggregates are
  /// trivial); `trials` seeded realizations run per cell.
  explicit FaultCampaign(RunConfig base, int trials = 20);

  /// Appends a grid dimension (expanded outermost-first, chainable).
  FaultCampaign& over(Axis axis);
  /// 1 = serial on the calling thread; 0 (default) = the process-wide
  /// ThreadPool::shared(); k > 1 = a dedicated pool of k workers.
  FaultCampaign& threads(int n);

  /// Expands the grid, runs trials + baselines through a Sweep (validated,
  /// parallel, cached), and aggregates per cell. Throws
  /// std::invalid_argument for invalid cells and when trials < 1.
  [[nodiscard]] CampaignResult run();

 private:
  RunConfig base_;
  int trials_;
  std::vector<Axis> axes_;
  int threads_ = 0;
};

/// The campaign column set: one column per user axis, then trials, coverage,
/// overhead, injected / corrected / recovered / unrecovered / rollbacks,
/// recovery_s, and the p50/p95/p99 trial wall times.
std::vector<std::string> campaign_columns(const CampaignResult& result);

/// Streams a campaign through a sink: begin(campaign_columns), one add_row
/// per cell, end().
void emit(const CampaignResult& result, ResultSink& sink);

}  // namespace bsr
