// bsr/run_config.hpp — the single validated configuration for one experiment.
//
// RunConfig merges the legacy core::RunOptions + core::ExtendedOptions pair
// into one flat, string-keyed struct: strategies, ABFT policies, and platform
// profiles are named by their bsr::Registry keys (see bsr/registry.hpp), so a
// scenario registered at runtime plugs into RunConfig / Sweep without touching
// core/. The legacy structs remain as a deprecated shim for one release
// (docs/API_MIGRATION.md maps old calls to new ones).
#pragma once

#include <cstdint>
#include <string>

#include "core/options.hpp"

namespace bsr {

namespace core {
struct RunReport;
}  // namespace core

namespace obs {
class TraceRecorder;
}  // namespace obs

/// Re-exported per-iteration ABFT policy (adaptive / force-none / -single /
/// -full) so facade users never spell the legacy namespaces.
using core::AbftPolicy;
/// Re-exported execution mode: TimingOnly (simulated clocks) or Numeric
/// (real kernels + real ABFT + fault injection).
using core::ExecutionMode;
/// Re-exported legacy strategy enum; prefer registry keys ("bsr", "sr", ...).
using core::StrategyKind;
/// Re-exported factorization selector: Cholesky, LU, or QR.
using predict::Factorization;

/// All knobs for one run. Defaults reproduce the paper's headline
/// configuration: LU, n = 30720, tuned block, BSR with r = 0 (maximum energy
/// saving), adaptive ABFT, timing-only execution on the paper platform.
struct RunConfig {
  // -- workload ---------------------------------------------------------------
  Factorization factorization = Factorization::LU;  ///< which decomposition
  std::int64_t n = 30720;  ///< matrix order
  /// Block (panel) size; 0 = auto-tune via core::tuned_block(n).
  std::int64_t b = 0;
  int elem_bytes = 8;  ///< 8 = double precision, 4 = single

  // -- strategy ---------------------------------------------------------------
  /// Energy-management strategy, a bsr::strategies() registry key
  /// ("original", "r2h", "sr", "bsr", or anything registered at runtime).
  std::string strategy = "bsr";
  /// BSR's r in [0, 1]: the fraction of each iteration's slack left
  /// unreclaimed by overclocking. r = 0 maximizes energy saving; r = r*
  /// (see energy/pareto.hpp) is energy-neutral with maximum speedup.
  double reclamation_ratio = 0.0;
  double fc_desired = 0.999999;  ///< target ABFT fault coverage
  // BSR ablation switches (all on = the paper's full BSR).
  bool bsr_use_optimized_guardband = true;  ///< apply the -150 mV guardband
  bool bsr_allow_overclocking = true;       ///< permit above-base clocks
  bool bsr_use_enhanced_predictor = true;   ///< enhanced vs first-iteration

  // -- fault tolerance --------------------------------------------------------
  /// Per-iteration checksum policy, a bsr::abft_policies() registry key
  /// ("adaptive", "none", "single", "full").
  std::string abft_policy = "adaptive";
  /// Numeric mode: when ABFT *detects* an error pattern it cannot correct,
  /// roll the trailing update back and recompute it at a safe clock instead
  /// of letting the corruption propagate.
  bool recover_uncorrectable = false;

  // -- execution --------------------------------------------------------------
  ExecutionMode mode = ExecutionMode::TimingOnly;  ///< simulate, or run real
  std::uint64_t seed = 42;  ///< root seed for all stochastic parts
  /// Scales the platform's entire SDC-rate table (exposure compression for
  /// reduced-size numeric runs; see DESIGN.md).
  double error_rate_multiplier = 1.0;
  bool noise_enabled = true;  ///< per-task execution-time jitter on/off

  // -- platform ---------------------------------------------------------------
  /// Simulated platform, a bsr::platforms() registry key ("paper_default",
  /// "test_small", "numeric_demo"). Ignored on cluster runs (devices >= 1).
  std::string platform = "paper_default";

  // -- variability (bsr/variability.hpp) --------------------------------------
  /// Seeded stochastic execution models: per-device efficiency drift,
  /// transfer jitter, DVFS transition jitter + P-state quantization, and a
  /// sustained-boost thermal budget. Disabled by default (bit-for-bit the
  /// deterministic simulator); when enabled, streams derive from `seed`
  /// (or variability.seed when non-zero) so runs stay bitwise reproducible
  /// at any sweep thread count. Presets: bsr::make_variability(key).
  var::Spec variability;

  // -- faults (bsr/faults.hpp) ------------------------------------------------
  /// Seeded statistical fault processes plus the recovery-cost model:
  /// Poisson (or fixed fig09-style) SDC arrivals at the clock/voltage-
  /// dependent SDC-table rates of each lane's realized frequency, with burst
  /// and per-device-hazard variants; checksum-corrected faults pay the
  /// correction latency in-lane, uncorrectable ones roll the affected
  /// update back and recompute at the base clock. Timing-only (numeric runs
  /// inject real faults; validate() rejects the combination). Disabled by
  /// default (bit-for-bit the no-fault simulator); when enabled, per-lane
  /// streams derive from `seed` (or faults.seed when non-zero) so campaigns
  /// stay bitwise reproducible at any sweep thread count. Presets:
  /// bsr::make_faults(key); campaigns: bsr::FaultCampaign.
  faultcamp::Spec faults;

  // -- cluster (bsr/cluster.hpp) ----------------------------------------------
  /// Number of accelerator devices for the event-driven cluster engine.
  /// 0 (default) runs the classic single-node CPU+GPU pipeline — bit-for-bit
  /// the pre-cluster behavior; >= 1 distributes the factorization
  /// block-cyclically over that many devices of the `cluster` profile
  /// (timing-only; the single-node `platform` key is then ignored).
  int devices = 0;
  /// bsr::cluster_profiles() registry key, consulted when devices >= 1.
  std::string cluster = "paper_cluster";
  /// Process grid for the trailing-update distribution (2-D block-cyclic,
  /// ScaLAPACK-style): grid_p owners across block columns, grid_q across
  /// block rows; grid_p * grid_q must equal `devices`. 0/0 (default) picks
  /// per topology: flat profiles keep the 1-D (devices x 1) layout —
  /// bit-for-bit the pre-grid engine — and rack profiles get a near-square
  /// grid. Ignored when devices = 0.
  int grid_p = 0;
  int grid_q = 0;  ///< see grid_p
  /// Panel-broadcast schedule, a bsr::collectives() registry key ("auto",
  /// "relay", "ring", "tree"). "auto" (default) resolves per topology: the
  /// classic relay on flat profiles, the binomial tree on rack profiles.
  /// Ignored when devices = 0.
  std::string collective = "auto";
  /// Straggler rebalancing: re-weight per-device work shares every iteration
  /// by the lanes' predicted TMU throughput, so devices drifting slow under
  /// the variability model shed trailing blocks instead of pinning the
  /// critical path. Off (default) keeps the static block-cyclic shares —
  /// bit-for-bit the pre-rebalancing engine. Ignored when devices = 0.
  bool rebalance = false;

  // -- observability (bsr/observability.hpp) ----------------------------------
  /// Optional span recorder riding alongside the configuration: when
  /// non-null, both engines emit per-iteration / per-event spans into it at
  /// their realization points (export with bsr::write_chrome_trace). The
  /// pointer is deliberately excluded from fingerprint() and every
  /// serialization — tracing observes a run, it can never change its bytes
  /// or split the result caches. The recorder must outlive the run; the
  /// caller owns it. Null (the default) is a strict no-op.
  obs::TraceRecorder* trace = nullptr;

  /// The effective block size: b, or the auto-tuned size clamped to n.
  [[nodiscard]] std::int64_t block() const;

  /// Throws std::invalid_argument (message prefixed "RunConfig:") when any
  /// field is out of range or any registry key is unknown: n <= 0, b > n,
  /// reclamation_ratio outside [0, 1], fc_desired outside (0, 1),
  /// elem_bytes not 4/8, negative error_rate_multiplier, or an unregistered
  /// strategy / abft_policy / platform name.
  void validate() const;

  /// Lowers to the legacy RunOptions; throws for registry-only strategies
  /// (ones without a legacy StrategyKind tag).
  [[nodiscard]] core::RunOptions options() const;
  /// Lowers the extension knobs to the legacy ExtendedOptions.
  [[nodiscard]] core::ExtendedOptions extended() const;

  /// Canonical "key=value;" serialization of every field. Fields with no
  /// effect on the result under the current mode (recover_uncorrectable in
  /// timing-only runs) are normalized out, so the fingerprint is usable as an
  /// exact result-cache key (bsr::Sweep keys its run cache on it).
  [[nodiscard]] std::string fingerprint() const;

  /// The per-iteration flop/byte model of this configuration's workload.
  [[nodiscard]] predict::WorkloadModel workload() const {
    return predict::WorkloadModel{factorization, n, block(), elem_bytes};
  }
};

/// Builds a RunConfig from the legacy option structs (migration shim).
RunConfig from_legacy(const core::RunOptions& opts,
                      const core::ExtendedOptions& ext = {});

/// One-shot facade: validates, resolves the platform through the registry,
/// and runs. Equivalent to core::Decomposer(make_platform(cfg.platform))
/// .run(cfg) — prefer bsr::Sweep for grids (it parallelizes and caches).
core::RunReport run(const RunConfig& cfg);

/// Splitmix64-derived seed for cell `index` of a grid rooted at `root`.
/// Depends only on (root, index) — never on the worker executing the cell —
/// so sweeps are bitwise reproducible at any thread count.
std::uint64_t derive_cell_seed(std::uint64_t root, std::uint64_t index);

}  // namespace bsr
