// bsr/serve.hpp — sweep-as-a-service behind the facade: the bsr_served
// daemon's building blocks (durable result store, request coalescing,
// admission control) as a library.
//
// The economics of simulator experiments change once results are shared:
// every RunConfig has an exact fingerprint (RunConfig::fingerprint()), so a
// result computed once — by anyone, in any process, at any time — answers
// every later request for the same configuration byte-for-byte. This header
// packages that as three composable layers:
//
//   bsr::serve::DiskResultStore store("/var/tmp/bsr-store");
//   cfg.validate();
//   auto cached = store.load(cfg.fingerprint());   // cross-process, durable
//
//   bsr::Sweep sweep;                               // or mount it in a sweep:
//   sweep.store(std::make_shared<bsr::serve::DiskResultStore>(dir));
//   auto result = sweep.over(bsr::n_axis({2048, 4096})).run();
//   sweep.counters().store_hits;                    // served without running
//
//   bsr::serve::ServerConfig scfg;                  // or serve it:
//   scfg.socket_path = "/tmp/bsr.sock";
//   scfg.store_dir = "/var/tmp/bsr-store";
//   bsr::serve::Server server(scfg);
//   server.start();                                 // bsr_served is this + wait()
//
//   auto client = bsr::serve::Client::connect_unix_socket("/tmp/bsr.sock");
//   auto response = client.run(R"({"n":4096,"strategy":"bsr"})");
//
// Guarantees (tests/serve/ asserts each):
//   * Byte-identity: a warm response — repeat request, other process, or
//     daemon restart over the same store directory — is byte-identical to
//     the cold response that executed the run (serialization is a fixpoint
//     and stores/caches hold serialized text, never re-serialized structs).
//   * Single-flight: N concurrent requests for one fingerprint cost exactly
//     one execution; the other N-1 wait and share the leader's result.
//   * Bounded admission: at most queue_depth connections wait for a worker;
//     beyond that, clients get one explicit
//     {"ok":false,"error":"overloaded","retry":true} line, never an
//     unbounded queue.
//   * Loud store misses: corrupt, old-schema, or mismatched records warn on
//     stderr and count as misses — never a crash, never a wrong result.
//
// The wire protocol (newline-delimited JSON over a Unix socket or localhost
// TCP) is specified in docs/SERVING.md; serve/protocol.hpp implements it.
#pragma once

#include "serve/client.hpp"
#include "serve/report_json.hpp"
#include "serve/server.hpp"
#include "serve/store.hpp"

// namespace bsr::serve — everything above re-opens here; the facade adds no
// aliases because serve types are already spelled bsr::serve::X:
//
//   DiskResultStore / StoreStats        (serve/store.hpp)
//   Server / ServerConfig / ServeStats  (serve/server.hpp)
//   Client                              (serve/client.hpp)
//   serialize_report / deserialize_report / serialize_config /
//   config_from_json                    (serve/report_json.hpp)
