// bsr/cluster.hpp — cluster-scale simulation behind the stable facade.
//
// Generalizes the single CPU+GPU pair to one host plus N accelerator devices
// on an event-driven simulated clock (src/cluster/): a ClusterProfile names
// the devices and the link topology (per-device links behind a shared host
// bus, optional NVLink-style peer links), the factorization's per-iteration
// tasks distribute block-cyclically across devices, and the energy strategies
// generalize to per-device slack with per-device ABFT-OC coverage.
//
// Two entry points:
//
//  * RunConfig::devices >= 1 routes bsr::run() / bsr::Sweep through the
//    cluster engine (devices = number of accelerators; the profile is the
//    bsr::cluster_profiles() key in RunConfig::cluster). The default
//    devices = 0 keeps the classic single-node pipeline, bit-for-bit.
//  * bsr::ClusterConfig is the explicit facade for scale-out experiments:
//
//      bsr::ClusterConfig cc;            // paper host + N x RTX 2080 Ti
//      cc.devices = 4;
//      cc.base.strategy = "bsr";
//      auto report = bsr::run_cluster(cc);
//      for (const auto& dev : report.device_usage) { ... }  // per device
//
// Scaling grids sweep the device count like any other axis:
//
//      auto grid = bsr::Sweep(cc.lowered())
//                      .over(bsr::devices_axis({1, 2, 4, 8}))
//                      .run();
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "bsr/registry.hpp"
#include "bsr/run_config.hpp"
#include "bsr/sweep.hpp"
#include "cluster/engine.hpp"
#include "cluster/report.hpp"
#include "cluster/topology.hpp"

namespace bsr {

/// Re-exported cluster shape: host + N accelerator models + link topology.
using cluster::ClusterProfile;
/// Re-exported per-run cluster result: makespan + per-lane DeviceUsage.
using cluster::ClusterReport;
/// Re-exported per-device accounting (busy/idle/DVFS seconds, energy,
/// flops, ABFT iteration counts, final clock).
using cluster::DeviceUsage;
/// Re-exported panel-broadcast schedule (relay / ring / binomial tree).
using cluster::BroadcastSchedule;

/// Builds a ClusterProfile for a given accelerator count.
using ClusterProfileFactory = std::function<cluster::ClusterProfile(int)>;

/// Registry of cluster topologies, pre-loaded with the built-ins:
///   paper_cluster (alias pcie): N replicated paper GPUs on per-device PCIe
///     x16 links behind a shared host bus;
///   nvlink_pairs (alias nvlink): paper_cluster plus 40 GB/s peer links
///     between adjacent device pairs;
///   rack_4x8 / rack_8x8 (alias rack): hierarchical racks of 4 / 8
///     DGX-style nodes, 8 paper GPUs per node behind per-node buses with
///     all-to-all intra-node NVLink, joined by a 25 GB/s inter-node network.
Registry<ClusterProfileFactory>& cluster_profiles();
/// Resolves `key` through bsr::cluster_profiles() and builds the profile
/// for `devices` accelerators. Throws std::invalid_argument naming the
/// profile and its capacity when `devices` exceeds what the profile holds.
cluster::ClusterProfile make_cluster_profile(const std::string& key,
                                             int devices);

/// Static shape metadata of a registered cluster profile, consulted without
/// building the profile (validation error messages, --nodes axes, auto
/// grid/collective resolution).
struct ClusterProfileInfo {
  /// Most devices the profile can hold; RunConfig::validate() and the
  /// profile factory both fail loudly (profile name + this capacity) beyond.
  int capacity = 4096;
  /// Devices per rack node; 0 = flat single-node profile.
  int devices_per_node = 0;
};
/// Shape metadata for `key` (any alias). Unregistered-but-valid keys (e.g.
/// profiles added to the registry at runtime) report the permissive default.
ClusterProfileInfo cluster_profile_info(const std::string& key);

/// A collective-schedule registry value: a concrete schedule, or nullopt for
/// "auto" (pick per topology: binomial tree on hierarchical rack profiles,
/// the classic relay on flat ones).
using ClusterCollective = std::optional<cluster::BroadcastSchedule>;

/// Registry of panel-broadcast schedules for RunConfig::collective:
/// auto (per-topology default), relay, ring, tree (alias binomial).
Registry<ClusterCollective>& collectives();

/// The distribution/collective knobs a cluster run of `cfg` will actually
/// use, with "auto" resolved against the profile's shape: flat profiles keep
/// the 1-D (devices x 1) grid and the relay broadcast (bit-for-bit the
/// pre-grid behavior); rack profiles get a near-square process grid and the
/// binomial tree. Feeds both engine lowering and fingerprint(), so cache
/// keys never alias across layouts.
struct ResolvedClusterLayout {
  int grid_p = 0;                 ///< process-grid columns owners
  int grid_q = 0;                 ///< process-grid row owners
  cluster::BroadcastSchedule schedule =
      cluster::BroadcastSchedule::Relay;  ///< resolved broadcast schedule
};
/// Resolves cfg's grid/collective for its profile (cfg.devices >= 1).
ResolvedClusterLayout resolved_cluster_layout(const RunConfig& cfg);

/// Explicit scale-out configuration: a base RunConfig (strategy, workload,
/// ABFT, seed) plus the cluster shape.
struct ClusterConfig {
  RunConfig base;  ///< strategy, workload, ABFT, seed — everything per-run
  int devices = 2;                        ///< accelerator count (>= 1)
  std::string profile = "paper_cluster";  ///< cluster_profiles() key

  /// The equivalent RunConfig (base with devices/cluster filled in) — what
  /// Sweep cells carry and fingerprints are computed over.
  [[nodiscard]] RunConfig lowered() const;
};

/// Runs one cluster factorization; the returned RunReport aggregates time /
/// energy / ED2P across devices and carries the per-device breakdown in
/// RunReport::device_usage (host first, then each accelerator).
core::RunReport run_cluster(const ClusterConfig& cfg);

/// Same engine for a RunConfig with devices >= 1 (what bsr::run() and the
/// Sweep engine dispatch to). Throws std::invalid_argument when devices < 1,
/// when the strategy has no built-in generalization (registry-only
/// strategies), or when mode is Numeric (cluster runs are timing-only).
core::RunReport run_cluster(const RunConfig& cfg);

/// The detailed per-device view (makespan + DeviceUsage per lane) of the same
/// deterministic run.
cluster::ClusterReport run_cluster_detailed(const ClusterConfig& cfg);

/// Sweep axis over accelerator counts (strong scaling: fixed problem).
Axis devices_axis(const std::vector<int>& counts);

/// Weak-scaling axis: point d runs `devices = d` with n scaled so the
/// per-device flop volume stays constant (n = n1 * d^(1/3), rounded to the
/// 256 grid; the block size re-tunes for the grown sizes). The d = 1 point
/// leaves n and the block size untouched, so it is the same cell as a
/// strong-scaling base at the same config (one cached run covers both).
Axis weak_devices_axis(const std::vector<int>& counts, std::int64_t n1);

}  // namespace bsr
