// bsr/registry.hpp — string-keyed registries behind the experiment API.
//
// Every pluggable ingredient of a run is resolved by name through a
// bsr::Registry: energy strategies, ABFT policies, platform profiles, and
// result sinks. The four paper strategies, the three built-in platforms, and
// the Table/CSV/JSON sinks are pre-registered; new scenarios register
// themselves at startup and immediately work with RunConfig, Sweep, and every
// bench flag — no core/ edits required. The legacy enum surface
// (core::StrategyKind, core::strategy_from_string) is a thin wrapper over
// these registries.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <ostream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "bsr/result_sink.hpp"
#include "bsr/run_config.hpp"
#include "common/ascii.hpp"
#include "energy/strategy.hpp"
#include "hw/platform.hpp"

namespace bsr {

/// A flat name -> value map with case-insensitive keys, alias support,
/// duplicate rejection, and lookup misses that name the registry and list
/// every known key (so a typo'd --strategy tells you what exists).
template <typename Value>
class Registry {
 public:
  /// `kind` names the registry in error messages ("strategy", "platform"...).
  explicit Registry(std::string kind) : kind_(std::move(kind)) {}

  /// Registers `value` under `key`; throws std::invalid_argument if the key
  /// (or an alias of the same spelling) already exists.
  void add(const std::string& key, Value value) {
    const std::string k = normalize(key);
    if (entries_.count(k) != 0 || aliases_.count(k) != 0) {
      throw std::invalid_argument(kind_ + " registry: duplicate key \"" + key +
                                  '"');
    }
    entries_.emplace(k, std::move(value));
  }

  /// Registers `name` as an alternate spelling of the existing `target` key.
  void alias(const std::string& name, const std::string& target) {
    const std::string a = normalize(name);
    const std::string t = normalize(target);
    if (entries_.count(a) != 0 || aliases_.count(a) != 0) {
      throw std::invalid_argument(kind_ + " registry: duplicate key \"" + name +
                                  '"');
    }
    if (entries_.count(t) == 0) {
      throw std::invalid_argument(kind_ + " registry: alias \"" + name +
                                  "\" targets unknown key \"" + target + '"');
    }
    aliases_.emplace(a, t);
  }

  /// True when `key` (canonical or alias, any case) resolves.
  [[nodiscard]] bool contains(const std::string& key) const {
    const std::string k = normalize(key);
    return entries_.count(k) != 0 || aliases_.count(k) != 0;
  }

  /// Resolves `key` (canonical or alias, any case); the miss diagnostic lists
  /// all known canonical keys.
  [[nodiscard]] const Value& get(const std::string& key) const {
    std::string k = normalize(key);
    if (const auto a = aliases_.find(k); a != aliases_.end()) k = a->second;
    const auto it = entries_.find(k);
    if (it == entries_.end()) {
      std::string known;
      for (const auto& [name, value] : entries_) {
        (void)value;
        known += known.empty() ? "" : ", ";
        known += name;
      }
      throw std::invalid_argument(kind_ + " registry: unknown key \"" + key +
                                  "\" (known: " + known + ")");
    }
    return it->second;
  }

  /// Resolves `key` (any case, alias or canonical) to its canonical
  /// spelling; throws like get() when unknown. Use this wherever keys are
  /// compared or serialized (RunConfig::fingerprint does) so "BSR", "bsr",
  /// and an alias like "org"/"original" denote one configuration.
  [[nodiscard]] std::string canonical(const std::string& key) const {
    std::string k = normalize(key);
    if (const auto a = aliases_.find(k); a != aliases_.end()) return a->second;
    if (entries_.count(k) == 0) (void)get(key);  // throw with known keys
    return k;
  }

  /// Canonical keys (no aliases), sorted.
  [[nodiscard]] std::vector<std::string> keys() const {
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const auto& [name, value] : entries_) {
      (void)value;
      out.push_back(name);
    }
    return out;
  }

 private:
  static std::string normalize(std::string s) { return ascii_lower(std::move(s)); }

  std::string kind_;
  std::map<std::string, Value> entries_;   // canonical key -> value
  std::map<std::string, std::string> aliases_;  // alias -> canonical key
};

/// One registered strategy: a factory, plus the legacy enum tag for the four
/// built-ins (registry-only strategies leave it empty — they work everywhere
/// except the deprecated StrategyKind surface).
struct StrategyEntry {
  /// Legacy enum tag of the four built-ins; empty for registry-only entries.
  std::optional<core::StrategyKind> kind;
  /// Builds the strategy object for one run; receives the whole RunConfig,
  /// so custom strategies may read any field.
  std::function<std::unique_ptr<energy::Strategy>(
      const RunConfig&, const predict::WorkloadModel&)>
      make;
};

/// Builds one simulated platform profile (a platforms() registry value).
using PlatformFactory = std::function<hw::PlatformProfile()>;
/// Builds one result sink writing to the stream (a result_sinks() value).
using SinkFactory = std::function<std::unique_ptr<ResultSink>(std::ostream&)>;

/// Strategy registry, pre-loaded on first use with the paper's four:
/// original (alias org), r2h, sr, bsr.
Registry<StrategyEntry>& strategies();
/// Platform registry: paper_default (aliases paper, default), test_small,
/// numeric_demo (alias numeric).
Registry<PlatformFactory>& platforms();
/// ABFT policy registry: adaptive, none, single, full (aliases force_*).
Registry<core::AbftPolicy>& abft_policies();
/// Result-sink registry: table, csv, json.
Registry<SinkFactory>& result_sinks();

/// Prints every registry's canonical keys (strategies, platforms, ABFT
/// policies, result sinks, cluster profiles, variability presets, fault
/// presets) to `out`, grouped under one header per registry with the keys
/// indented beneath it — the implementation behind the grid benches' --list
/// flag, so users can discover keys (runtime-registered ones included)
/// without reading source.
void print_registered_keys(std::ostream& out);

class Cli;

/// Registers the grid benches' standard `--list` switch (chainable).
Cli& add_list_flag(Cli& cli);
/// True when --list was given: the registry keys have been printed to
/// stdout and the driver should `return 0`.
bool handled_list_flag(const Cli& cli);

/// Resolves `key` through bsr::platforms() and builds the profile.
hw::PlatformProfile make_platform(const std::string& key);
/// Resolves cfg.strategy through bsr::strategies() and builds the strategy.
std::unique_ptr<energy::Strategy> make_strategy(
    const RunConfig& cfg, const predict::WorkloadModel& wl);
/// Resolves `key` through bsr::result_sinks() and builds a sink on `out`.
std::unique_ptr<ResultSink> make_result_sink(const std::string& key,
                                             std::ostream& out);

}  // namespace bsr
