// bsr/observability.hpp — deterministic run tracing, the unified metrics
// registry, and build provenance behind the facade.
//
// Three independent surfaces, one contract: *observation never perturbs the
// simulation*.
//
//   1. Tracing. Attach a bsr::TraceRecorder to RunConfig::trace and every
//      realized scheduling decision — iterations, lane busy windows, panel
//      and update kernels, link transfers, DVFS transitions, fault recovery
//      — is recorded as a flat POD span on the simulator's integer-ns time
//      axis. Export with write_chrome_trace() and load the file in Perfetto
//      (ui.perfetto.dev) or chrome://tracing.
//
//   2. Metrics. bsr::MetricsRegistry is a process-wide registry of named
//      counters, gauges, and histograms with Prometheus-style text
//      exposition — the serve daemon's `metrics` op and the benches' cache
//      statistics share it.
//
//   3. Build provenance. bsr::build_info() reports the git describe string,
//      compiler, and flags the binary was built with; the same stamp lands
//      in trace metadata and the metrics exposition.
//
//   bsr::RunConfig cfg;
//   bsr::TraceRecorder rec;
//   cfg.trace = &rec;                       // observation on
//   auto report = bsr::run(cfg);            // identical to the untraced run
//   std::ofstream out("run.trace.json");
//   bsr::write_chrome_trace(out, rec, bsr::trace_meta_for(cfg, "my_tool"));
//
// Guarantees:
//   * Inert when off: RunConfig::trace == nullptr (the default) draws no
//     random numbers, allocates nothing, and leaves every engine bit-for-bit
//     identical to a build without observability.
//   * Inert when on: recording copies values the engines already computed —
//     a traced run's RunReport is byte-identical to the untraced run's.
//   * Never fingerprinted: the recorder pointer is excluded from
//     RunConfig::fingerprint() and every serialization path, so tracing a
//     run can never split the sweep/serve result caches.
//   * Deterministic export: same config + seed => byte-identical trace JSON
//     (spans are sorted by (start, duration) and floats use shortest
//     round-trip formatting).
//
// See docs/OBSERVABILITY.md for the span taxonomy and metric naming scheme.
#pragma once

#include <iosfwd>
#include <string>

#include "common/build_info.hpp"
#include "common/metrics.hpp"
#include "core/report.hpp"
#include "obs/chrome_export.hpp"
#include "obs/trace.hpp"

namespace bsr {

struct RunConfig;
class Cli;

/// Flat span recorder attached via RunConfig::trace (see obs/trace.hpp for
/// the span layout). One recorder per run; not thread-safe.
using TraceRecorder = obs::TraceRecorder;
/// One recorded interval: [start_ns, start_ns + dur_ns) on the simulated
/// clock plus the decision annotations (lane, clocks, slack, ABFT mode,
/// fault counts) realized in that window.
using TraceSpan = obs::TraceSpan;
/// Discriminates what a TraceSpan describes (iteration, lane busy window,
/// kernel, transfer, DVFS transition, recovery).
using TraceSpanKind = obs::SpanKind;
/// Run-level metadata stamped into the exported trace's otherData block.
using TraceMeta = obs::TraceMeta;

/// Process-wide registry of named counters / gauges / histograms with
/// Prometheus-style text exposition (see common/metrics.hpp; reach the
/// shared instance via MetricsRegistry::global()).
using MetricsRegistry = common::MetricsRegistry;
/// Monotonically increasing event count (MetricsRegistry::counter()).
using MetricCounter = common::Counter;
/// Last-write-wins instantaneous value (MetricsRegistry::gauge()).
using MetricGauge = common::Gauge;
/// Fixed-bucket distribution (MetricsRegistry::histogram()).
using MetricHistogram = common::Histogram;

/// Version / compiler / flags stamp baked in at build time.
using BuildInfo = common::BuildInfo;

/// The stamp for this binary ("unknown" fields when built outside git).
using common::build_info;
/// One-line human rendering: "<tool> <version> (<compiler>, <type>[, flags])".
using common::build_info_line;

/// Serializes a recorded run as Chrome trace-event JSON (Perfetto-loadable);
/// deterministic for a fixed (recorder, meta).
using obs::write_chrome_trace;
/// write_chrome_trace into a returned string.
using obs::chrome_trace_json;

/// Builds the trace metadata for one run: `tool` plus cfg's fingerprint,
/// canonical strategy key, and lane count (2 on single-node runs, 1 + devices
/// on cluster runs).
TraceMeta trace_meta_for(const RunConfig& cfg, const std::string& tool);

/// Runs `cfg` with a recorder attached (any recorder already on cfg.trace is
/// ignored) and writes the Chrome trace to `path`, stamped with
/// trace_meta_for(cfg, tool). The report returned is byte-identical to
/// bsr::run(cfg) without the recorder. Throws std::runtime_error when `path`
/// cannot be opened or written.
core::RunReport run_traced(const RunConfig& cfg, const std::string& path,
                           const std::string& tool);

/// Registers the benches' standard `--trace <path>` option (chainable,
/// mirrors add_list_flag); empty default = tracing off.
Cli& add_trace_flag(Cli& cli);

/// The --trace argument, or "" when the flag was not given.
std::string trace_path(const Cli& cli);

/// Registers the standard `--version` switch (chainable).
Cli& add_version_flag(Cli& cli);
/// True when --version was given: build_info_line(tool) has been printed to
/// stdout and the driver should `return 0`.
bool handled_version_flag(const Cli& cli, const std::string& tool);

}  // namespace bsr
